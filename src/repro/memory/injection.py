"""Fault injection: a memory that honours injected functional faults,
plus exhaustive/sampled fault-universe enumerators for campaigns.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, Sequence

from .faults import (
    AddressDecoderFault,
    Cell,
    CouplingFault,
    Fault,
    IdempotentCouplingFault,
    InversionCouplingFault,
    ReadDisturbFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from .model import Memory


class FaultyMemory(Memory):
    """A :class:`Memory` whose storage obeys injected fault semantics.

    Faults can be supplied at construction or injected later; static
    conditions (stuck-at values, CFst forcing) are re-established after
    every bulk load so that the *initial* content already reflects the
    defect, as in real silicon.
    """

    def __init__(
        self,
        n_words: int,
        width: int,
        faults: Iterable[Fault] = (),
        fill: int = 0,
    ) -> None:
        self._faults: list[Fault] = []
        super().__init__(n_words, width, fill)
        for fault in faults:
            self.inject(fault)

    # -- fault management ------------------------------------------------
    @property
    def faults(self) -> tuple[Fault, ...]:
        return tuple(self._faults)

    def inject(self, fault: Fault) -> None:
        fault.validate(self.n_words, self.width)
        self._faults.append(fault)
        self._enforce_static()

    def clear_faults(self) -> None:
        self._faults.clear()

    def remove(self, fault: Fault) -> None:
        """Withdraw one injected fault (time-varying injection).

        The stored content is left exactly as the fault last forced it:
        a transient stuck-at that disappears leaves the stuck value in
        the cell until something overwrites it, as in real silicon.
        Faults compare by value, so removing one occurrence of a
        duplicate episode withdraws a single injection.
        """
        try:
            self._faults.remove(fault)
        except ValueError:
            raise ValueError(f"fault not injected: {fault.describe()}") from None

    # -- storage semantics -------------------------------------------------
    def _address_fault(self, addr: int) -> AddressDecoderFault | None:
        for fault in self._faults:
            if isinstance(fault, AddressDecoderFault) and fault.addr == addr:
                return fault
        return None

    def _store(self, addr: int, value: int) -> None:
        af = self._address_fault(addr)
        if af is None:
            self._store_word(addr, value)
        elif af.kind_code == "none":
            return  # write lost: no cell selected
        elif af.kind_code == "other":
            self._store_word(af.other_addr, value)
        else:  # multi
            self._store_word(addr, value)
            self._store_word(af.other_addr, value)

    def _fetch(self, addr: int) -> int:
        af = self._address_fault(addr)
        if af is None:
            return self._read_word(addr)
        if af.kind_code == "none":
            return af.float_value & self._mask
        if af.kind_code == "other":
            return self._read_word(af.other_addr)
        a = self._read_word(addr)
        b = self._read_word(af.other_addr)
        return (a | b) if af.wired_or else (a & b)

    def _read_word(self, addr: int) -> int:
        """Fetch one physical word, applying read-disturb effects."""
        value = self._words[addr]
        returned = value
        disturbed = False
        for fault in self._faults:
            if isinstance(fault, ReadDisturbFault) and fault.cell.addr == addr:
                mask = 1 << fault.cell.bit
                self._words[addr] ^= mask
                disturbed = True
                if not fault.deceptive:
                    returned ^= mask
        if disturbed:
            self._enforce_static()
        return returned

    def _store_word(self, addr: int, value: int) -> None:
        old = self._words[addr]
        new = value
        # Per-cell write faults on the target word (SAF force, TF block).
        for fault in self._faults:
            if isinstance(fault, StuckAtFault) and fault.cell.addr == addr:
                bit = fault.cell.bit
                new = (new & ~(1 << bit)) | (fault.value << bit)
            elif isinstance(fault, TransitionFault) and fault.cell.addr == addr:
                bit = fault.cell.bit
                old_b = (old >> bit) & 1
                new_b = (new >> bit) & 1
                blocked = (
                    (fault.rising and old_b == 0 and new_b == 1)
                    or (not fault.rising and old_b == 1 and new_b == 0)
                )
                if blocked:
                    new = (new & ~(1 << bit)) | (old_b << bit)
        self._words[addr] = new

        # Coupling effects triggered by aggressor transitions in this word.
        for fault in self._faults:
            if not isinstance(fault, CouplingFault):
                continue
            aggr = fault.aggressor
            if aggr.addr != addr:
                continue
            a_old = (old >> aggr.bit) & 1
            a_new = (self._words[addr] >> aggr.bit) & 1
            if a_old == a_new:
                continue
            rising = a_new == 1
            if isinstance(fault, IdempotentCouplingFault):
                if rising == fault.rising:
                    self._set_cell(fault.victim, fault.forced_value)
            elif isinstance(fault, InversionCouplingFault):
                if rising == fault.rising:
                    self._set_cell(
                        fault.victim, 1 - self._cell(fault.victim)
                    )
        self._enforce_static()

    def _after_load(self) -> None:
        self._enforce_static()

    def _enforce_static(self) -> None:
        """Re-apply state-holding fault conditions to the stored data."""
        for fault in self._faults:
            if isinstance(fault, StuckAtFault):
                self._set_cell(fault.cell, fault.value)
        for fault in self._faults:
            if isinstance(fault, StateCouplingFault):
                if self._cell(fault.aggressor) == fault.aggressor_value:
                    self._set_cell(fault.victim, fault.forced_value)

    # -- raw cell helpers (bypass access counting) ---------------------------
    def _cell(self, cell: Cell) -> int:
        return (self._words[cell.addr] >> cell.bit) & 1

    def _set_cell(self, cell: Cell, value: int) -> None:
        word = self._words[cell.addr]
        self._words[cell.addr] = (word & ~(1 << cell.bit)) | (value << cell.bit)


# ---------------------------------------------------------------------------
# Fault-universe enumeration
# ---------------------------------------------------------------------------


def all_cells(n_words: int, width: int) -> Iterator[Cell]:
    for addr in range(n_words):
        for bit in range(width):
            yield Cell(addr, bit)


def enumerate_stuck_at(n_words: int, width: int) -> Iterator[StuckAtFault]:
    """Both SAF polarities for every cell (``2 * n * b`` faults)."""
    for cell in all_cells(n_words, width):
        yield StuckAtFault(cell, 0)
        yield StuckAtFault(cell, 1)


def enumerate_transition(n_words: int, width: int) -> Iterator[TransitionFault]:
    """Both TF directions for every cell (``2 * n * b`` faults)."""
    for cell in all_cells(n_words, width):
        yield TransitionFault(cell, rising=True)
        yield TransitionFault(cell, rising=False)


def enumerate_read_disturb(
    n_words: int, width: int, *, deceptive: bool | None = None
) -> Iterator[ReadDisturbFault]:
    """RDF and/or DRDF for every cell.

    ``deceptive=None`` yields both flavours; ``True``/``False``
    restricts to DRDF/RDF respectively.
    """
    flavours = (False, True) if deceptive is None else (deceptive,)
    for cell in all_cells(n_words, width):
        for flavour in flavours:
            yield ReadDisturbFault(cell, deceptive=flavour)


def enumerate_address_faults(
    n_words: int, *, wired_or: bool = False
) -> Iterator[AddressDecoderFault]:
    """The AF universe: one AF-1 per address plus AF-2/AF-3 for every
    ordered address pair (``n + 2 * n * (n-1)`` faults)."""
    for addr in range(n_words):
        yield AddressDecoderFault(addr, "none")
    for addr, other in itertools.permutations(range(n_words), 2):
        yield AddressDecoderFault(addr, "other", other)
        yield AddressDecoderFault(addr, "multi", other, wired_or=wired_or)


def _coupling_variants(
    aggressor: Cell, victim: Cell, kinds: Sequence[str]
) -> Iterator[CouplingFault]:
    if "CFst" in kinds:
        for y, x in itertools.product((0, 1), repeat=2):
            yield StateCouplingFault(aggressor, victim, y, x)
    if "CFid" in kinds:
        for rising, x in itertools.product((True, False), (0, 1)):
            yield IdempotentCouplingFault(aggressor, victim, rising, x)
    if "CFin" in kinds:
        for rising in (True, False):
            yield InversionCouplingFault(aggressor, victim, rising)


_CF_KINDS = ("CFst", "CFid", "CFin")


def enumerate_intra_word_cf(
    n_words: int,
    width: int,
    kinds: Sequence[str] = _CF_KINDS,
    addresses: Iterable[int] | None = None,
) -> Iterator[CouplingFault]:
    """All ordered intra-word bit pairs with the requested CF kinds."""
    addr_range = range(n_words) if addresses is None else addresses
    for addr in addr_range:
        for a_bit, v_bit in itertools.permutations(range(width), 2):
            yield from _coupling_variants(
                Cell(addr, a_bit), Cell(addr, v_bit), kinds
            )


def enumerate_inter_word_cf(
    n_words: int,
    width: int,
    kinds: Sequence[str] = _CF_KINDS,
    *,
    same_bit_only: bool = True,
    max_pairs: int | None = None,
    rng: random.Random | None = None,
) -> Iterator[CouplingFault]:
    """Inter-word coupling faults.

    The full cross product is quartic in memory size; by default the
    classic bit-oriented assumption is used (aggressor and victim share
    the bit position, as cells in one physical column/row), optionally
    down-sampled to *max_pairs* ordered cell pairs with *rng*.
    """
    pairs: list[tuple[Cell, Cell]] = []
    for a_addr, v_addr in itertools.permutations(range(n_words), 2):
        if same_bit_only:
            for a_bit in range(width):
                pairs.append((Cell(a_addr, a_bit), Cell(v_addr, a_bit)))
        else:
            for a_bit, v_bit in itertools.product(range(width), repeat=2):
                pairs.append((Cell(a_addr, a_bit), Cell(v_addr, v_bit)))
    if max_pairs is not None and len(pairs) > max_pairs:
        rng = rng if rng is not None else random.Random(0)
        pairs = rng.sample(pairs, max_pairs)
    for aggressor, victim in pairs:
        yield from _coupling_variants(aggressor, victim, kinds)


# ---------------------------------------------------------------------------
# Streaming fault classes
# ---------------------------------------------------------------------------


class FaultClass(Sequence):
    """A whole fault class as an index-addressable descriptor.

    Behaves like the materialized fault list it replaces — same length,
    same ordering, same elements — but holds only the enumeration
    parameters: ``len`` is O(1), ``cls[i]`` materializes exactly one
    :class:`Fault`, and iteration yields faults one at a time, so a
    megaword campaign never holds millions of fault objects at once.
    Slicing materializes a plain list (slices are only taken for small
    windows: chunk shards, kept-missed samples, test fixtures).

    The class-level batch kernels dispatch on the concrete subclass and
    read the enumeration parameters directly; equality and hashing are
    by those parameters, so rebinding a :class:`CampaignRunner` with an
    equal descriptor is recognized as the same universe.
    """

    kind = "?"

    def __init__(self, n_words: int, width: int) -> None:
        self.n_words = n_words
        self.width = width

    # subclasses set self._length in __init__ and implement _fault_at
    def _fault_at(self, index: int) -> Fault:
        raise NotImplementedError

    def _spec(self) -> tuple:
        return (type(self).__name__, self.n_words, self.width)

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._fault_at(i) for i in range(*index.indices(self._length))]
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("fault index out of range")
        return self._fault_at(index)

    def __iter__(self) -> Iterator[Fault]:
        for i in range(self._length):
            yield self._fault_at(i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultClass):
            return NotImplemented
        return self._spec() == other._spec()

    def __hash__(self) -> int:
        return hash(self._spec())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(n_words={self.n_words}, "
            f"width={self.width}, len={self._length})"
        )


def _second_of_pair(rem: int, first: int) -> int:
    """Decode the second element of an ``itertools.permutations(..., 2)``
    block: values in ascending order with *first* skipped."""
    return rem if rem < first else rem + 1


class StuckAtClass(FaultClass):
    """``enumerate_stuck_at`` order: cell-major, value 0 then 1."""

    kind = "SAF"
    variants = 2

    def __init__(self, n_words: int, width: int) -> None:
        super().__init__(n_words, width)
        self._length = 2 * n_words * width

    def _fault_at(self, index: int) -> StuckAtFault:
        cell_index, value = divmod(index, 2)
        addr, bit = divmod(cell_index, self.width)
        return StuckAtFault(Cell(addr, bit), value)


class TransitionClass(FaultClass):
    """``enumerate_transition`` order: cell-major, rising then falling."""

    kind = "TF"
    variants = 2

    def __init__(self, n_words: int, width: int) -> None:
        super().__init__(n_words, width)
        self._length = 2 * n_words * width

    def _fault_at(self, index: int) -> TransitionFault:
        cell_index, which = divmod(index, 2)
        addr, bit = divmod(cell_index, self.width)
        return TransitionFault(Cell(addr, bit), rising=which == 0)


class ReadDisturbClass(FaultClass):
    """``enumerate_read_disturb`` order for one flavour: cell-major."""

    variants = 1

    def __init__(self, n_words: int, width: int, *, deceptive: bool) -> None:
        super().__init__(n_words, width)
        self.deceptive = deceptive
        self._length = n_words * width

    @property
    def kind(self) -> str:
        return "DRDF" if self.deceptive else "RDF"

    def _spec(self) -> tuple:
        return (type(self).__name__, self.n_words, self.width, self.deceptive)

    def _fault_at(self, index: int) -> ReadDisturbFault:
        addr, bit = divmod(index, self.width)
        return ReadDisturbFault(Cell(addr, bit), deceptive=self.deceptive)


_CF_VARIANTS = {"CFst": 4, "CFid": 4, "CFin": 2}


def _cf_variant(
    cf_kind: str, aggressor: Cell, victim: Cell, variant: int
) -> CouplingFault:
    """Variant *variant* of ``_coupling_variants`` for one cell pair."""
    if cf_kind == "CFst":
        y, x = divmod(variant, 2)
        return StateCouplingFault(aggressor, victim, y, x)
    if cf_kind == "CFid":
        half, x = divmod(variant, 2)
        return IdempotentCouplingFault(aggressor, victim, half == 0, x)
    return InversionCouplingFault(aggressor, victim, variant == 0)


class IntraWordCFClass(FaultClass):
    """``enumerate_intra_word_cf`` order for one CF kind: address-major,
    then ordered bit pairs (``permutations(range(width), 2)``), then the
    kind's parameter variants."""

    def __init__(self, n_words: int, width: int, cf_kind: str) -> None:
        super().__init__(n_words, width)
        if cf_kind not in _CF_VARIANTS:
            raise ValueError(f"unknown coupling kind {cf_kind!r}")
        self.cf_kind = cf_kind
        self.variants = _CF_VARIANTS[cf_kind]
        self.n_pairs = width * (width - 1)
        self._length = n_words * self.n_pairs * self.variants

    @property
    def kind(self) -> str:
        return self.cf_kind

    def _spec(self) -> tuple:
        return (type(self).__name__, self.n_words, self.width, self.cf_kind)

    def pair_bits(self, pair_index: int) -> tuple[int, int]:
        a_bit, rem = divmod(pair_index, self.width - 1)
        return a_bit, _second_of_pair(rem, a_bit)

    def _fault_at(self, index: int) -> CouplingFault:
        addr, rem = divmod(index, self.n_pairs * self.variants)
        pair_index, variant = divmod(rem, self.variants)
        a_bit, v_bit = self.pair_bits(pair_index)
        return _cf_variant(
            self.cf_kind, Cell(addr, a_bit), Cell(addr, v_bit), variant
        )


class InterWordCFClass(FaultClass):
    """``enumerate_inter_word_cf`` order for one CF kind.

    Cell pairs follow ``permutations(range(n_words), 2)`` crossed with
    bit positions; when the pair count exceeds *max_pairs* the same
    down-sampling as the eager enumerator is applied, drawing pair
    *indices* from *rng* at construction time — ``random.Random.sample``
    selects positions independently of element values, so the selection
    is bit-identical to sampling the materialized pair list, and the
    shared campaign RNG is consumed in the same order as before.
    """

    def __init__(
        self,
        n_words: int,
        width: int,
        cf_kind: str,
        *,
        same_bit_only: bool = True,
        max_pairs: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(n_words, width)
        if cf_kind not in _CF_VARIANTS:
            raise ValueError(f"unknown coupling kind {cf_kind!r}")
        self.cf_kind = cf_kind
        self.variants = _CF_VARIANTS[cf_kind]
        self.same_bit_only = same_bit_only
        bits = width if same_bit_only else width * width
        total_pairs = n_words * (n_words - 1) * bits
        self.pair_indices: tuple[int, ...] | None = None
        if max_pairs is not None and total_pairs > max_pairs:
            rng = rng if rng is not None else random.Random(0)
            self.pair_indices = tuple(rng.sample(range(total_pairs), max_pairs))
            self.n_pairs = max_pairs
        else:
            self.n_pairs = total_pairs
        self._length = self.n_pairs * self.variants

    @property
    def kind(self) -> str:
        return self.cf_kind

    def _spec(self) -> tuple:
        return (
            type(self).__name__,
            self.n_words,
            self.width,
            self.cf_kind,
            self.same_bit_only,
            self.pair_indices,
        )

    def pair_cells(self, pair_pos: int) -> tuple[Cell, Cell]:
        flat = (
            self.pair_indices[pair_pos]
            if self.pair_indices is not None
            else pair_pos
        )
        if self.same_bit_only:
            perm, a_bit = divmod(flat, self.width)
            v_bit = a_bit
        else:
            perm, rem = divmod(flat, self.width * self.width)
            a_bit, v_bit = divmod(rem, self.width)
        a_addr, rem = divmod(perm, self.n_words - 1)
        v_addr = _second_of_pair(rem, a_addr)
        return Cell(a_addr, a_bit), Cell(v_addr, v_bit)

    def _fault_at(self, index: int) -> CouplingFault:
        pair_pos, variant = divmod(index, self.variants)
        aggressor, victim = self.pair_cells(pair_pos)
        return _cf_variant(self.cf_kind, aggressor, victim, variant)


class AddressFaultClass(FaultClass):
    """``enumerate_address_faults`` order: the ``n`` AF-1 faults, then
    AF-2/AF-3 for every ordered address pair."""

    kind = "AF"

    def __init__(self, n_words: int, *, wired_or: bool = False) -> None:
        super().__init__(n_words, 1)
        self.wired_or = wired_or
        self._length = n_words + 2 * n_words * (n_words - 1)

    def _spec(self) -> tuple:
        return (type(self).__name__, self.n_words, self.wired_or)

    def _fault_at(self, index: int) -> AddressDecoderFault:
        if index < self.n_words:
            return AddressDecoderFault(index, "none")
        perm, which = divmod(index - self.n_words, 2)
        addr, rem = divmod(perm, self.n_words - 1)
        other = _second_of_pair(rem, addr)
        if which == 0:
            return AddressDecoderFault(addr, "other", other)
        return AddressDecoderFault(addr, "multi", other, wired_or=self.wired_or)


def standard_fault_universe(
    n_words: int,
    width: int,
    *,
    max_inter_pairs: int | None = None,
    rng: random.Random | None = None,
    include_rdf: bool = False,
    include_af: bool = False,
    streaming: bool = True,
) -> dict[str, Sequence[Fault]]:
    """The Section 2 fault universe grouped by class name.

    Keys: ``SAF``, ``TF``, ``CFst-intra``, ``CFid-intra``, ``CFin-intra``,
    ``CFst-inter``, ``CFid-inter``, ``CFin-inter``; with
    ``include_rdf`` also ``RDF`` and ``DRDF``, with ``include_af`` also
    ``AF`` (the extension classes of benchmark E8 — off by default so
    the Section 5 equality experiments keep their historical class
    set).

    By default the values are streaming :class:`FaultClass` descriptors
    (O(1) ``len``, per-index fault materialization) in the exact order
    of the eager enumerators; ``streaming=False`` restores materialized
    lists.  Both forms consume *rng* identically — the inter-word CF
    classes draw their down-sample at construction, in dict order — so
    a given seed selects the same sampled pairs either way.
    """
    if streaming:
        universe: dict[str, Sequence[Fault]] = {
            "SAF": StuckAtClass(n_words, width),
            "TF": TransitionClass(n_words, width),
        }
        for kind in _CF_KINDS:
            universe[f"{kind}-intra"] = IntraWordCFClass(n_words, width, kind)
            universe[f"{kind}-inter"] = InterWordCFClass(
                n_words, width, kind, max_pairs=max_inter_pairs, rng=rng
            )
        if include_rdf:
            universe["RDF"] = ReadDisturbClass(n_words, width, deceptive=False)
            universe["DRDF"] = ReadDisturbClass(n_words, width, deceptive=True)
        if include_af:
            universe["AF"] = AddressFaultClass(n_words)
        return universe

    universe = {
        "SAF": list(enumerate_stuck_at(n_words, width)),
        "TF": list(enumerate_transition(n_words, width)),
    }
    for kind in _CF_KINDS:
        universe[f"{kind}-intra"] = list(
            enumerate_intra_word_cf(n_words, width, (kind,))
        )
        universe[f"{kind}-inter"] = list(
            enumerate_inter_word_cf(
                n_words, width, (kind,), max_pairs=max_inter_pairs, rng=rng
            )
        )
    if include_rdf:
        universe["RDF"] = list(
            enumerate_read_disturb(n_words, width, deceptive=False)
        )
        universe["DRDF"] = list(
            enumerate_read_disturb(n_words, width, deceptive=True)
        )
    if include_af:
        universe["AF"] = list(enumerate_address_faults(n_words))
    return universe
