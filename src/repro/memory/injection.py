"""Fault injection: a memory that honours injected functional faults,
plus exhaustive/sampled fault-universe enumerators for campaigns.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, Sequence

from .faults import (
    AddressDecoderFault,
    Cell,
    CouplingFault,
    Fault,
    IdempotentCouplingFault,
    InversionCouplingFault,
    ReadDisturbFault,
    StateCouplingFault,
    StuckAtFault,
    TransitionFault,
)
from .model import Memory


class FaultyMemory(Memory):
    """A :class:`Memory` whose storage obeys injected fault semantics.

    Faults can be supplied at construction or injected later; static
    conditions (stuck-at values, CFst forcing) are re-established after
    every bulk load so that the *initial* content already reflects the
    defect, as in real silicon.
    """

    def __init__(
        self,
        n_words: int,
        width: int,
        faults: Iterable[Fault] = (),
        fill: int = 0,
    ) -> None:
        self._faults: list[Fault] = []
        super().__init__(n_words, width, fill)
        for fault in faults:
            self.inject(fault)

    # -- fault management ------------------------------------------------
    @property
    def faults(self) -> tuple[Fault, ...]:
        return tuple(self._faults)

    def inject(self, fault: Fault) -> None:
        fault.validate(self.n_words, self.width)
        self._faults.append(fault)
        self._enforce_static()

    def clear_faults(self) -> None:
        self._faults.clear()

    # -- storage semantics -------------------------------------------------
    def _address_fault(self, addr: int) -> AddressDecoderFault | None:
        for fault in self._faults:
            if isinstance(fault, AddressDecoderFault) and fault.addr == addr:
                return fault
        return None

    def _store(self, addr: int, value: int) -> None:
        af = self._address_fault(addr)
        if af is None:
            self._store_word(addr, value)
        elif af.kind_code == "none":
            return  # write lost: no cell selected
        elif af.kind_code == "other":
            self._store_word(af.other_addr, value)
        else:  # multi
            self._store_word(addr, value)
            self._store_word(af.other_addr, value)

    def _fetch(self, addr: int) -> int:
        af = self._address_fault(addr)
        if af is None:
            return self._read_word(addr)
        if af.kind_code == "none":
            return af.float_value & self._mask
        if af.kind_code == "other":
            return self._read_word(af.other_addr)
        a = self._read_word(addr)
        b = self._read_word(af.other_addr)
        return (a | b) if af.wired_or else (a & b)

    def _read_word(self, addr: int) -> int:
        """Fetch one physical word, applying read-disturb effects."""
        value = self._words[addr]
        returned = value
        disturbed = False
        for fault in self._faults:
            if isinstance(fault, ReadDisturbFault) and fault.cell.addr == addr:
                mask = 1 << fault.cell.bit
                self._words[addr] ^= mask
                disturbed = True
                if not fault.deceptive:
                    returned ^= mask
        if disturbed:
            self._enforce_static()
        return returned

    def _store_word(self, addr: int, value: int) -> None:
        old = self._words[addr]
        new = value
        # Per-cell write faults on the target word (SAF force, TF block).
        for fault in self._faults:
            if isinstance(fault, StuckAtFault) and fault.cell.addr == addr:
                bit = fault.cell.bit
                new = (new & ~(1 << bit)) | (fault.value << bit)
            elif isinstance(fault, TransitionFault) and fault.cell.addr == addr:
                bit = fault.cell.bit
                old_b = (old >> bit) & 1
                new_b = (new >> bit) & 1
                blocked = (
                    (fault.rising and old_b == 0 and new_b == 1)
                    or (not fault.rising and old_b == 1 and new_b == 0)
                )
                if blocked:
                    new = (new & ~(1 << bit)) | (old_b << bit)
        self._words[addr] = new

        # Coupling effects triggered by aggressor transitions in this word.
        for fault in self._faults:
            if not isinstance(fault, CouplingFault):
                continue
            aggr = fault.aggressor
            if aggr.addr != addr:
                continue
            a_old = (old >> aggr.bit) & 1
            a_new = (self._words[addr] >> aggr.bit) & 1
            if a_old == a_new:
                continue
            rising = a_new == 1
            if isinstance(fault, IdempotentCouplingFault):
                if rising == fault.rising:
                    self._set_cell(fault.victim, fault.forced_value)
            elif isinstance(fault, InversionCouplingFault):
                if rising == fault.rising:
                    self._set_cell(
                        fault.victim, 1 - self._cell(fault.victim)
                    )
        self._enforce_static()

    def _after_load(self) -> None:
        self._enforce_static()

    def _enforce_static(self) -> None:
        """Re-apply state-holding fault conditions to the stored data."""
        for fault in self._faults:
            if isinstance(fault, StuckAtFault):
                self._set_cell(fault.cell, fault.value)
        for fault in self._faults:
            if isinstance(fault, StateCouplingFault):
                if self._cell(fault.aggressor) == fault.aggressor_value:
                    self._set_cell(fault.victim, fault.forced_value)

    # -- raw cell helpers (bypass access counting) ---------------------------
    def _cell(self, cell: Cell) -> int:
        return (self._words[cell.addr] >> cell.bit) & 1

    def _set_cell(self, cell: Cell, value: int) -> None:
        word = self._words[cell.addr]
        self._words[cell.addr] = (word & ~(1 << cell.bit)) | (value << cell.bit)


# ---------------------------------------------------------------------------
# Fault-universe enumeration
# ---------------------------------------------------------------------------


def all_cells(n_words: int, width: int) -> Iterator[Cell]:
    for addr in range(n_words):
        for bit in range(width):
            yield Cell(addr, bit)


def enumerate_stuck_at(n_words: int, width: int) -> Iterator[StuckAtFault]:
    """Both SAF polarities for every cell (``2 * n * b`` faults)."""
    for cell in all_cells(n_words, width):
        yield StuckAtFault(cell, 0)
        yield StuckAtFault(cell, 1)


def enumerate_transition(n_words: int, width: int) -> Iterator[TransitionFault]:
    """Both TF directions for every cell (``2 * n * b`` faults)."""
    for cell in all_cells(n_words, width):
        yield TransitionFault(cell, rising=True)
        yield TransitionFault(cell, rising=False)


def enumerate_read_disturb(
    n_words: int, width: int, *, deceptive: bool | None = None
) -> Iterator[ReadDisturbFault]:
    """RDF and/or DRDF for every cell.

    ``deceptive=None`` yields both flavours; ``True``/``False``
    restricts to DRDF/RDF respectively.
    """
    flavours = (False, True) if deceptive is None else (deceptive,)
    for cell in all_cells(n_words, width):
        for flavour in flavours:
            yield ReadDisturbFault(cell, deceptive=flavour)


def enumerate_address_faults(
    n_words: int, *, wired_or: bool = False
) -> Iterator[AddressDecoderFault]:
    """The AF universe: one AF-1 per address plus AF-2/AF-3 for every
    ordered address pair (``n + 2 * n * (n-1)`` faults)."""
    for addr in range(n_words):
        yield AddressDecoderFault(addr, "none")
    for addr, other in itertools.permutations(range(n_words), 2):
        yield AddressDecoderFault(addr, "other", other)
        yield AddressDecoderFault(addr, "multi", other, wired_or=wired_or)


def _coupling_variants(
    aggressor: Cell, victim: Cell, kinds: Sequence[str]
) -> Iterator[CouplingFault]:
    if "CFst" in kinds:
        for y, x in itertools.product((0, 1), repeat=2):
            yield StateCouplingFault(aggressor, victim, y, x)
    if "CFid" in kinds:
        for rising, x in itertools.product((True, False), (0, 1)):
            yield IdempotentCouplingFault(aggressor, victim, rising, x)
    if "CFin" in kinds:
        for rising in (True, False):
            yield InversionCouplingFault(aggressor, victim, rising)


_CF_KINDS = ("CFst", "CFid", "CFin")


def enumerate_intra_word_cf(
    n_words: int,
    width: int,
    kinds: Sequence[str] = _CF_KINDS,
    addresses: Iterable[int] | None = None,
) -> Iterator[CouplingFault]:
    """All ordered intra-word bit pairs with the requested CF kinds."""
    addr_range = range(n_words) if addresses is None else addresses
    for addr in addr_range:
        for a_bit, v_bit in itertools.permutations(range(width), 2):
            yield from _coupling_variants(
                Cell(addr, a_bit), Cell(addr, v_bit), kinds
            )


def enumerate_inter_word_cf(
    n_words: int,
    width: int,
    kinds: Sequence[str] = _CF_KINDS,
    *,
    same_bit_only: bool = True,
    max_pairs: int | None = None,
    rng: random.Random | None = None,
) -> Iterator[CouplingFault]:
    """Inter-word coupling faults.

    The full cross product is quartic in memory size; by default the
    classic bit-oriented assumption is used (aggressor and victim share
    the bit position, as cells in one physical column/row), optionally
    down-sampled to *max_pairs* ordered cell pairs with *rng*.
    """
    pairs: list[tuple[Cell, Cell]] = []
    for a_addr, v_addr in itertools.permutations(range(n_words), 2):
        if same_bit_only:
            for a_bit in range(width):
                pairs.append((Cell(a_addr, a_bit), Cell(v_addr, a_bit)))
        else:
            for a_bit, v_bit in itertools.product(range(width), repeat=2):
                pairs.append((Cell(a_addr, a_bit), Cell(v_addr, v_bit)))
    if max_pairs is not None and len(pairs) > max_pairs:
        rng = rng if rng is not None else random.Random(0)
        pairs = rng.sample(pairs, max_pairs)
    for aggressor, victim in pairs:
        yield from _coupling_variants(aggressor, victim, kinds)


def standard_fault_universe(
    n_words: int,
    width: int,
    *,
    max_inter_pairs: int | None = None,
    rng: random.Random | None = None,
    include_rdf: bool = False,
    include_af: bool = False,
) -> dict[str, list[Fault]]:
    """The Section 2 fault universe grouped by class name.

    Keys: ``SAF``, ``TF``, ``CFst-intra``, ``CFid-intra``, ``CFin-intra``,
    ``CFst-inter``, ``CFid-inter``, ``CFin-inter``; with
    ``include_rdf`` also ``RDF`` and ``DRDF``, with ``include_af`` also
    ``AF`` (the extension classes of benchmark E8 — off by default so
    the Section 5 equality experiments keep their historical class
    set).
    """
    universe: dict[str, list[Fault]] = {
        "SAF": list(enumerate_stuck_at(n_words, width)),
        "TF": list(enumerate_transition(n_words, width)),
    }
    for kind in _CF_KINDS:
        universe[f"{kind}-intra"] = list(
            enumerate_intra_word_cf(n_words, width, (kind,))
        )
        universe[f"{kind}-inter"] = list(
            enumerate_inter_word_cf(
                n_words, width, (kind,), max_pairs=max_inter_pairs, rng=rng
            )
        )
    if include_rdf:
        universe["RDF"] = list(
            enumerate_read_disturb(n_words, width, deceptive=False)
        )
        universe["DRDF"] = list(
            enumerate_read_disturb(n_words, width, deceptive=True)
        )
    if include_af:
        universe["AF"] = list(enumerate_address_faults(n_words))
    return universe
