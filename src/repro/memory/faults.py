"""Functional fault models of Section 2 of the paper.

The model set is the classic one (Dekker et al. [4, 5], van de Goor
[14]): stuck-at faults, transition faults, and the three coupling-fault
flavours (state, idempotent, inversion), each of which may be
*intra-word* (aggressor and victim bits inside the same word) or
*inter-word* (different addresses).

Semantics implemented here, under the single-fault assumption:

``SAF(cell, v)``
    the cell always stores ``v``; any write of the opposite value is
    ineffective and the stored (thus read) value stays ``v``.

``TF(cell, rising)``
    the cell cannot make the 0->1 transition (``rising=True``) or the
    1->0 transition; a write attempting the failed transition leaves
    the old value.

``CFst <y; x>``
    whenever the aggressor holds ``y``, the victim is forced to ``x``;
    the forcing is continuous — writes to the victim while the
    condition holds are overridden, and writes that put the aggressor
    into ``y`` immediately force the victim.

``CFid <t; x>``
    a write that makes the aggressor undergo transition ``t`` forces
    the victim to ``x``.

``CFin <t>``
    a write that makes the aggressor undergo transition ``t`` inverts
    the victim.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Cell:
    """A single bit cell: word address plus bit position."""

    addr: int
    bit: int

    def __str__(self) -> str:
        return f"({self.addr},{self.bit})"


class Fault:
    """Base class for functional memory faults."""

    @property
    def cells(self) -> tuple[Cell, ...]:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def validate(self, n_words: int, width: int) -> None:
        for cell in self.cells:
            if not 0 <= cell.addr < n_words:
                raise ValueError(f"{self.describe()}: address {cell.addr} out of range")
            if not 0 <= cell.bit < width:
                raise ValueError(f"{self.describe()}: bit {cell.bit} out of range")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.describe()


@dataclass(frozen=True)
class StuckAtFault(Fault):
    """SAF: *cell* permanently holds *value*."""

    cell: Cell
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    @property
    def cells(self) -> tuple[Cell, ...]:
        return (self.cell,)

    @property
    def kind(self) -> str:
        return "SAF"

    def describe(self) -> str:
        return f"SAF{self.value}@{self.cell}"


@dataclass(frozen=True)
class TransitionFault(Fault):
    """TF: *cell* fails its 0->1 (``rising``) or 1->0 transition."""

    cell: Cell
    rising: bool

    @property
    def cells(self) -> tuple[Cell, ...]:
        return (self.cell,)

    @property
    def kind(self) -> str:
        return "TF"

    def describe(self) -> str:
        arrow = "0->1" if self.rising else "1->0"
        return f"TF({arrow})@{self.cell}"


@dataclass(frozen=True)
class CouplingFault(Fault):
    """Base of the two-cell coupling faults."""

    aggressor: Cell
    victim: Cell

    def __post_init__(self) -> None:
        if self.aggressor == self.victim:
            raise ValueError("aggressor and victim must be distinct cells")

    @property
    def cells(self) -> tuple[Cell, ...]:
        return (self.aggressor, self.victim)

    @property
    def intra_word(self) -> bool:
        """True when aggressor and victim share a word address."""
        return self.aggressor.addr == self.victim.addr


@dataclass(frozen=True)
class StateCouplingFault(CouplingFault):
    """CFst: while aggressor holds ``aggressor_value``, victim is forced."""

    aggressor_value: int = 0
    forced_value: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.aggressor_value not in (0, 1) or self.forced_value not in (0, 1):
            raise ValueError("CFst values must be 0 or 1")

    @property
    def kind(self) -> str:
        return "CFst"

    def describe(self) -> str:
        where = "intra" if self.intra_word else "inter"
        return (
            f"CFst<{self.aggressor_value};{self.forced_value}>"
            f"{self.aggressor}->{self.victim}[{where}]"
        )


@dataclass(frozen=True)
class IdempotentCouplingFault(CouplingFault):
    """CFid: aggressor transition forces the victim to ``forced_value``."""

    rising: bool = True
    forced_value: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.forced_value not in (0, 1):
            raise ValueError("CFid forced value must be 0 or 1")

    @property
    def kind(self) -> str:
        return "CFid"

    def describe(self) -> str:
        arrow = "up" if self.rising else "down"
        where = "intra" if self.intra_word else "inter"
        return (
            f"CFid<{arrow};{self.forced_value}>"
            f"{self.aggressor}->{self.victim}[{where}]"
        )


@dataclass(frozen=True)
class InversionCouplingFault(CouplingFault):
    """CFin: aggressor transition inverts the victim."""

    rising: bool = True

    @property
    def kind(self) -> str:
        return "CFin"

    def describe(self) -> str:
        arrow = "up" if self.rising else "down"
        where = "intra" if self.intra_word else "inter"
        return f"CFin<{arrow}>{self.aggressor}->{self.victim}[{where}]"


@dataclass(frozen=True)
class ReadDisturbFault(Fault):
    """RDF/DRDF: a read of the cell flips its content.

    With ``deceptive=False`` (plain RDF) the read also *returns* the
    flipped value; with ``deceptive=True`` (DRDF) the read returns the
    correct value and only the stored content flips — classically
    detectable only by a second consecutive read (March SS / March RAW
    style ``r, r`` pairs).
    """

    cell: Cell
    deceptive: bool = False

    @property
    def cells(self) -> tuple[Cell, ...]:
        return (self.cell,)

    @property
    def kind(self) -> str:
        return "DRDF" if self.deceptive else "RDF"

    def describe(self) -> str:
        return f"{self.kind}@{self.cell}"


@dataclass(frozen=True)
class AddressDecoderFault(Fault):
    """AF: a defect in the address decoder (van de Goor's AF classes).

    ``kind_code`` selects the behaviour for accesses to ``addr``:

    * ``"none"``  — no cell is accessed: writes are lost, reads return
      the floating-line value ``float_value`` (AF-1);
    * ``"other"`` — accesses land on ``other_addr`` instead (AF-2; with
      the roles swapped this also models AF-4, two addresses sharing
      one cell);
    * ``"multi"`` — accesses hit both ``addr`` and ``other_addr``:
      writes update both words, reads return the wired-AND (or
      wired-OR) of the two (AF-3).
    """

    addr: int = 0
    kind_code: str = "none"
    other_addr: int | None = None
    float_value: int = 0
    wired_or: bool = False

    _KINDS = ("none", "other", "multi")

    def __post_init__(self) -> None:
        if self.kind_code not in self._KINDS:
            raise ValueError(f"unknown address-fault kind {self.kind_code!r}")
        if self.kind_code in ("other", "multi") and self.other_addr is None:
            raise ValueError(f"AF kind {self.kind_code!r} needs other_addr")
        if self.other_addr is not None and self.other_addr == self.addr:
            raise ValueError("other_addr must differ from addr")

    @property
    def cells(self) -> tuple[Cell, ...]:
        return ()

    @property
    def kind(self) -> str:
        return "AF"

    def validate(self, n_words: int, width: int) -> None:
        if not 0 <= self.addr < n_words:
            raise ValueError(f"{self.describe()}: address out of range")
        if self.other_addr is not None and not 0 <= self.other_addr < n_words:
            raise ValueError(f"{self.describe()}: other address out of range")

    def describe(self) -> str:
        if self.kind_code == "none":
            return f"AF-none@{self.addr}"
        wiring = "or" if self.wired_or else "and"
        if self.kind_code == "multi":
            return f"AF-multi({wiring})@{self.addr}+{self.other_addr}"
        return f"AF-other@{self.addr}->{self.other_addr}"


FAULT_KINDS = ("SAF", "TF", "CFst", "CFid", "CFin", "RDF", "DRDF", "AF")
