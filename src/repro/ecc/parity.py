"""Single-bit parity: the lightest protection TOMT supports."""

from __future__ import annotations

from .codec import DecodeResult


class ParityCodec:
    """(k+1, k) even or odd parity.

    The parity bit is appended above the data bits.  Detects every
    odd-weight error; corrects nothing.
    """

    def __init__(self, data_bits: int, even: bool = True) -> None:
        if data_bits < 1:
            raise ValueError("data_bits must be >= 1")
        self._data_bits = data_bits
        self.even = even

    @property
    def data_bits(self) -> int:
        return self._data_bits

    @property
    def code_bits(self) -> int:
        return self._data_bits + 1

    def _parity_bit(self, data: int) -> int:
        p = data.bit_count() & 1
        return p if self.even else p ^ 1

    def encode(self, data: int) -> int:
        data &= (1 << self._data_bits) - 1
        return data | (self._parity_bit(data) << self._data_bits)

    def decode(self, codeword: int) -> DecodeResult:
        data = codeword & ((1 << self._data_bits) - 1)
        stored = (codeword >> self._data_bits) & 1
        bad = stored != self._parity_bit(data)
        return DecodeResult(
            data=data, error_detected=bad, corrected=False, uncorrectable=bad
        )
