"""Error-detecting/correcting code substrate (parity, Hamming)."""

from .codec import Codec, CodedMemory, DecodeResult
from .hamming import HammingSEC, HammingSECDED, check_bits_for
from .parity import ParityCodec

__all__ = [
    "Codec",
    "CodedMemory",
    "DecodeResult",
    "HammingSEC",
    "HammingSECDED",
    "ParityCodec",
    "check_bits_for",
]
