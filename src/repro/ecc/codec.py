"""Common interface for error-detecting/correcting codes and a
code-protected memory wrapper (the substrate TOMT [13] relies on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..memory.model import Memory


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword."""

    data: int
    error_detected: bool
    corrected: bool
    uncorrectable: bool = False


class Codec(Protocol):
    """An (n, k) systematic block code over one memory word."""

    @property
    def data_bits(self) -> int: ...

    @property
    def code_bits(self) -> int: ...

    def encode(self, data: int) -> int: ...

    def decode(self, codeword: int) -> DecodeResult: ...


class CodedMemory:
    """A data-word memory stored as codewords in a backing memory.

    Reads decode and (for correcting codes) repair the stored word;
    every detected error is counted, which is the detection channel the
    TOMT baseline uses instead of a signature.

    The backing memory is exposed so fault injection applies to the
    *physical* codeword array — check bits can be faulty too, exactly as
    in a real parity/Hamming-protected embedded memory.
    """

    def __init__(self, backing: Memory, codec: Codec) -> None:
        if backing.width != codec.code_bits:
            raise ValueError(
                f"backing memory width {backing.width} != code width "
                f"{codec.code_bits}"
            )
        self.backing = backing
        self.codec = codec
        self.errors_detected = 0
        self.errors_corrected = 0
        self.uncorrectable = 0

    @property
    def n_words(self) -> int:
        return self.backing.n_words

    @property
    def width(self) -> int:
        return self.codec.data_bits

    def write(self, addr: int, data: int) -> None:
        self.backing.write(addr, self.codec.encode(data))

    def read(self, addr: int) -> int:
        result = self.codec.decode(self.backing.read(addr))
        if result.error_detected:
            self.errors_detected += 1
        if result.corrected:
            self.errors_corrected += 1
        if result.uncorrectable:
            self.uncorrectable += 1
        return result.data

    def load_data(self, words) -> None:
        """Initialize from plain data words (encoding each)."""
        self.backing.load([self.codec.encode(w) for w in words])

    def snapshot(self) -> list[int]:
        """Decoded content view (March-executor compatible)."""
        return self.snapshot_data()

    def snapshot_data(self) -> list[int]:
        """Decoded view of the current content (no error accounting)."""
        return [self.codec.decode(w).data for w in self.backing.snapshot()]

    def reset_counters(self) -> None:
        self.errors_detected = 0
        self.errors_corrected = 0
        self.uncorrectable = 0
