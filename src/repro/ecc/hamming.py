"""Hamming SEC and extended Hamming SEC-DED codecs.

Classic textbook construction: codeword positions are numbered from 1;
power-of-two positions hold check bits, the rest hold data bits in
order.  The syndrome is the XOR of the positions of set bits, which is
0 for a clean word and equals the error position for a single-bit
error.  The SEC-DED variant appends an overall parity bit that
separates single (correctable) from double (detectable, uncorrectable)
errors.
"""

from __future__ import annotations

from .codec import DecodeResult


def check_bits_for(data_bits: int) -> int:
    """Number of Hamming check bits for *data_bits* data bits."""
    if data_bits < 1:
        raise ValueError("data_bits must be >= 1")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class HammingSEC:
    """Single-error-correcting Hamming code over one memory word."""

    def __init__(self, data_bits: int) -> None:
        self._data_bits = data_bits
        self._check_bits = check_bits_for(data_bits)
        self._n = data_bits + self._check_bits
        # Position (1-based) of each data bit within the codeword.
        self._data_positions = [
            pos
            for pos in range(1, self._n + 1)
            if pos & (pos - 1)  # not a power of two
        ]
        self._check_positions = [
            pos for pos in range(1, self._n + 1) if not pos & (pos - 1)
        ]

    @property
    def data_bits(self) -> int:
        return self._data_bits

    @property
    def check_bits(self) -> int:
        return self._check_bits

    @property
    def code_bits(self) -> int:
        return self._n

    # -- position <-> bit-index mapping -------------------------------------
    def _spread(self, data: int) -> dict[int, int]:
        """Place data bits at their codeword positions."""
        placed = {}
        for i, pos in enumerate(self._data_positions):
            placed[pos] = (data >> i) & 1
        return placed

    def encode(self, data: int) -> int:
        data &= (1 << self._data_bits) - 1
        placed = self._spread(data)
        syndrome = 0
        for pos, bit in placed.items():
            if bit:
                syndrome ^= pos
        for pos in self._check_positions:
            placed[pos] = 1 if syndrome & pos else 0
        codeword = 0
        for pos, bit in placed.items():
            if bit:
                codeword |= 1 << (pos - 1)
        return codeword

    def _syndrome(self, codeword: int) -> int:
        syndrome = 0
        for pos in range(1, self._n + 1):
            if (codeword >> (pos - 1)) & 1:
                syndrome ^= pos
        return syndrome

    def _extract(self, codeword: int) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions):
            if (codeword >> (pos - 1)) & 1:
                data |= 1 << i
        return data

    def decode(self, codeword: int) -> DecodeResult:
        syndrome = self._syndrome(codeword)
        if syndrome == 0:
            return DecodeResult(self._extract(codeword), False, False)
        if syndrome <= self._n:
            repaired = codeword ^ (1 << (syndrome - 1))
            return DecodeResult(self._extract(repaired), True, True)
        # Syndrome points outside the codeword: detectable but not
        # correctable (possible with multi-bit errors).
        return DecodeResult(
            self._extract(codeword), True, False, uncorrectable=True
        )


class HammingSECDED:
    """Extended Hamming code: corrects 1-bit, detects 2-bit errors."""

    def __init__(self, data_bits: int) -> None:
        self._inner = HammingSEC(data_bits)

    @property
    def data_bits(self) -> int:
        return self._inner.data_bits

    @property
    def code_bits(self) -> int:
        return self._inner.code_bits + 1

    @property
    def check_bits(self) -> int:
        return self._inner.check_bits + 1

    def encode(self, data: int) -> int:
        inner = self._inner.encode(data)
        overall = inner.bit_count() & 1
        return inner | (overall << self._inner.code_bits)

    def decode(self, codeword: int) -> DecodeResult:
        inner = codeword & ((1 << self._inner.code_bits) - 1)
        stored_overall = (codeword >> self._inner.code_bits) & 1
        parity_ok = (inner.bit_count() & 1) == stored_overall
        syndrome = self._inner._syndrome(inner)

        if syndrome == 0 and parity_ok:
            return DecodeResult(self._inner._extract(inner), False, False)
        if syndrome == 0 and not parity_ok:
            # The overall parity bit itself flipped.
            return DecodeResult(self._inner._extract(inner), True, True)
        if not parity_ok:
            # Odd number of flips: single-bit error, correctable.
            result = self._inner.decode(inner)
            return DecodeResult(result.data, True, result.corrected,
                                uncorrectable=not result.corrected)
        # Non-zero syndrome with clean overall parity: double error.
        return DecodeResult(
            self._inner._extract(inner), True, False, uncorrectable=True
        )
