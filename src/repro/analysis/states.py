"""Two-cell state analysis — the machinery behind the paper's Figure 1.

Figure 1(a) shows all fault-free states of two arbitrary cells ``i``
(lower address) and ``j`` (higher address) and the read/write
transitions a 100 %-CF March test must exercise; executing March C−
traverses the full sequence 1..18.  Figure 1(b) shows the joint states
of two bits *within* a word and the write/read conditions a
word-oriented test needs for intra-word CF coverage.

This module replays a March test on a tiny two-cell (or one-word)
memory and extracts:

* the visited state/operation sequence (regenerates Fig. 1(a));
* the CF activation-observation conditions covered for an ordered
  aggressor/victim pair (the theory behind the Section 5 coverage
  claims);
* the intra-word write/read pattern conditions per bit pair
  (regenerates Fig. 1(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.march import MarchTest


@dataclass(frozen=True)
class TwoCellEvent:
    """One operation applied to one of the two observed cells."""

    step: int
    cell: str  # "i" (lower address) or "j" (higher address)
    kind: str  # "r" or "w"
    value: int  # value read or written (fault-free)
    state: tuple[int, int]  # (v_i, v_j) after the operation

    def label(self) -> str:
        return f"{self.kind}{self.value}[{self.cell}]"


def two_cell_trace(
    test: MarchTest, *, initial: tuple[int, int] = (0, 0)
) -> list[TwoCellEvent]:
    """Replay *test* on a fault-free two-cell memory.

    Cell ``i`` is address 0, cell ``j`` is address 1.  Both solid and
    transparent bit-oriented tests are supported (transparent data is
    resolved against *initial*).
    """
    values = {0: initial[0], 1: initial[1]}
    names = {0: "i", 1: "j"}
    events: list[TwoCellEvent] = []
    step = 1
    for element in test.elements:
        for addr in element.order.addresses(2):
            for op in element.ops:
                if op.data.relative:
                    value = initial[addr] ^ op.data.mask.resolve(1)
                else:
                    value = op.data.mask.resolve(1)
                if op.is_write:
                    values[addr] = value & 1
                events.append(
                    TwoCellEvent(
                        step,
                        names[addr],
                        op.kind.value,
                        value & 1,
                        (values[0], values[1]),
                    )
                )
                step += 1
    return events


def state_sequence(events: list[TwoCellEvent]) -> list[tuple[int, int]]:
    """The joint-state sequence visited by the trace."""
    return [e.state for e in events]


@dataclass
class PairConditionCoverage:
    """CF activation/observation conditions covered by a two-cell trace.

    Conditions are recorded for both aggressor choices:

    * ``cfid`` — tuples ``(aggressor, transition, victim_state)``; the
      condition covers CFid<transition; forced = 1 - victim_state> (a
      forcing to the victim's current value is invisible);
    * ``cfin`` — tuples ``(aggressor, transition)``;
    * ``cfst`` — tuples ``(aggressor, aggressor_state, victim_expected)``;
      covers CFst<aggressor_state; forced = 1 - victim_expected>.

    ``transition`` is "up" or "down".  Full coverage is 8 ``cfid``
    tuples, 4 ``cfin`` tuples and 8 ``cfst`` tuples.
    """

    cfid: set[tuple[str, str, int]] = field(default_factory=set)
    cfin: set[tuple[str, str]] = field(default_factory=set)
    cfst: set[tuple[str, int, int]] = field(default_factory=set)

    @property
    def cfid_complete(self) -> bool:
        return len(self.cfid) == 8

    @property
    def cfin_complete(self) -> bool:
        return len(self.cfin) == 4

    @property
    def cfst_complete(self) -> bool:
        return len(self.cfst) == 8

    @property
    def complete(self) -> bool:
        return self.cfid_complete and self.cfin_complete and self.cfst_complete


def pair_condition_coverage(events: list[TwoCellEvent]) -> PairConditionCoverage:
    """Extract covered CF conditions from a two-cell trace.

    An *activation* (aggressor transition while the victim holds a
    state) counts as covered only if the victim is read before its next
    write — otherwise the fault effect would be overwritten unobserved.
    Similarly a CFst condition is covered by a read of the victim while
    the aggressor holds a state.
    """
    coverage = PairConditionCoverage()
    other = {"i": "j", "j": "i"}
    # Pending activations waiting for a victim read: victim -> conditions.
    pending_id: dict[str, set[tuple[str, str, int]]] = {"i": set(), "j": set()}
    pending_in: dict[str, set[tuple[str, str]]] = {"i": set(), "j": set()}
    # Cell values become known at a cell's first write (or read).
    values: dict[str, int | None] = {"i": None, "j": None}
    for event in events:
        if event.kind == "w":
            old = values[event.cell]
            new = event.value
            victim = other[event.cell]
            victim_value = values[victim]
            if old is not None and victim_value is not None and old != new:
                transition = "up" if new == 1 else "down"
                pending_id[victim].add((event.cell, transition, victim_value))
                pending_in[victim].add((event.cell, transition))
            values[event.cell] = new
            # A write to a cell overwrites any unobserved activation on it.
            pending_id[event.cell].clear()
            pending_in[event.cell].clear()
        else:
            cell = event.cell
            values[cell] = event.value
            # A read of `cell` observes pending activations targeting it.
            coverage.cfid.update(pending_id[cell])
            coverage.cfin.update(pending_in[cell])
            pending_id[cell].clear()
            pending_in[cell].clear()
            aggressor = other[cell]
            aggr_value = values[aggressor]
            if aggr_value is not None:
                coverage.cfst.add((aggressor, aggr_value, event.value))
    return coverage


# ---------------------------------------------------------------------------
# Figure 1(b): intra-word bit-pair write/read conditions
# ---------------------------------------------------------------------------


@dataclass
class IntraWordConditions:
    """Write-then-read pattern conditions per ordered bit pair.

    ``covered[(i, j)]`` is the set of joint patterns ``(p_i, p_j)``
    that some word write established and a subsequent read observed
    before the next write.  Full Figure 1(b) coverage is all four
    patterns; a word test built from solid backgrounds alone covers only
    ``(0,0)`` and ``(1,1)`` — the checkerboard backgrounds contribute
    the mixed patterns.
    """

    width: int
    covered: dict[tuple[int, int], set[tuple[int, int]]] = field(
        default_factory=dict
    )

    def pairs_with(self, n_patterns: int) -> int:
        return sum(1 for pats in self.covered.values() if len(pats) >= n_patterns)

    @property
    def all_pairs_full(self) -> bool:
        return all(len(p) == 4 for p in self.covered.values())

    def missing(self) -> dict[tuple[int, int], set[tuple[int, int]]]:
        full = {(0, 0), (0, 1), (1, 0), (1, 1)}
        return {
            pair: full - pats
            for pair, pats in self.covered.items()
            if pats != full
        }


def intra_word_conditions(
    test: MarchTest, width: int, *, initial: int = 0
) -> IntraWordConditions:
    """Replay *test* on a single word and extract Fig. 1(b) conditions.

    Transparent data is resolved against *initial* (the theorem's
    conditions are relative to the resident data; ``initial=0`` gives
    the absolute view used in the paper's figure).
    """
    result = IntraWordConditions(width)
    for i in range(width):
        for j in range(width):
            if i != j:
                result.covered[(i, j)] = set()
    content = initial
    pending: int | None = None  # written word awaiting its read
    for element in test.elements:
        for op in element.ops:
            value = op.data.evaluate(initial, width) if op.data.relative else (
                op.data.mask.resolve(width)
            )
            if op.is_write:
                content = value
                pending = value
            else:
                # Read observes the current content.
                if pending is not None:
                    word = pending
                    for (i, j), pats in result.covered.items():
                        pats.add(((word >> i) & 1, (word >> j) & 1))
                    pending = None
    return result
