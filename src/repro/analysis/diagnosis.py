"""Fault diagnosis from transparent-test read logs.

The paper's introduction positions BIST as a vehicle for embedded
memory "testing and diagnosis"; this module provides the diagnosis
half: given the mismatching reads of a test session (the alias-free
compare oracle's records), localize the defect and classify its likely
fault model.

The classifier is heuristic but grounded in the models' signatures:

* a **SAF** cell fails in one polarity only — every mismatching read of
  the cell observed the same wrong value;
* a **TF** cell holds a stale value right after the blocked transition,
  i.e. mismatches appear only on reads expecting one polarity and the
  first failing read of a visit follows a write;
* a **coupling** defect shows one failing victim cell whose errors
  correlate with operations elsewhere (or, intra-word, with writes to
  the same word);
* **address-decoder** faults smear mismatches across whole words or
  multiple addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bist.executor import ReadRecord, RunResult, run_march
from ..core.march import MarchTest
from ..memory.model import Memory


@dataclass
class CellObservation:
    """Mismatch statistics for one cell (word address, bit position)."""

    addr: int
    bit: int
    errors: int = 0
    wrong_zero: int = 0  # read 0 where 1 expected
    wrong_one: int = 0  # read 1 where 0 expected
    clean_zero: int = 0  # read 0 where 0 expected
    clean_one: int = 0  # read 1 where 1 expected

    @property
    def clean_reads(self) -> int:
        return self.clean_zero + self.clean_one

    @property
    def always_reads_zero(self) -> bool:
        """Consistent with a cell pinned at 0: every read returned 0."""
        return self.wrong_zero > 0 and self.wrong_one == 0 and self.clean_one == 0

    @property
    def always_reads_one(self) -> bool:
        """Consistent with a cell pinned at 1: every read returned 1."""
        return self.wrong_one > 0 and self.wrong_zero == 0 and self.clean_zero == 0


@dataclass
class Diagnosis:
    """Outcome of analysing a faulty session's read records."""

    suspects: list[CellObservation] = field(default_factory=list)
    failing_addresses: list[int] = field(default_factory=list)
    classification: str = "no-fault"
    detail: str = ""

    @property
    def detected(self) -> bool:
        return bool(self.suspects)

    def suspect_cells(self) -> set[tuple[int, int]]:
        return {(s.addr, s.bit) for s in self.suspects}

    def render(self) -> str:
        if not self.detected:
            return "diagnosis: no fault observed"
        lines = [f"diagnosis: {self.classification} — {self.detail}"]
        for s in self.suspects:
            lines.append(
                f"  cell ({s.addr},{s.bit}): {s.errors} failing reads "
                f"({s.wrong_zero}x read-0-expected-1, "
                f"{s.wrong_one}x read-1-expected-0)"
            )
        return "\n".join(lines)


def analyse_records(records: list[ReadRecord], width: int) -> Diagnosis:
    """Build a :class:`Diagnosis` from collected read records."""
    # Pass 1: find the failing cells.
    failing: set[tuple[int, int]] = set()
    for record in records:
        delta = record.raw ^ record.expected
        bit = 0
        while delta:
            if delta & 1:
                failing.add((record.addr, bit))
            delta >>= 1
            bit += 1

    # Pass 2: full statistics for every failing cell (including clean
    # reads that happened before the first observed error).
    cells: dict[tuple[int, int], CellObservation] = {
        key: CellObservation(*key) for key in failing
    }
    for record in records:
        delta = record.raw ^ record.expected
        for addr, bit in failing:
            if addr != record.addr:
                continue
            got = (record.raw >> bit) & 1
            obs = cells[(addr, bit)]
            if (delta >> bit) & 1:
                obs.errors += 1
                if got:
                    obs.wrong_one += 1
                else:
                    obs.wrong_zero += 1
            else:
                if got:
                    obs.clean_one += 1
                else:
                    obs.clean_zero += 1

    suspects = sorted(
        (o for o in cells.values() if o.errors),
        key=lambda o: (-o.errors, o.addr, o.bit),
    )
    diagnosis = Diagnosis(suspects=suspects)
    diagnosis.failing_addresses = sorted({o.addr for o in suspects})
    if not suspects:
        return diagnosis
    diagnosis.classification, diagnosis.detail = _classify(suspects, width)
    return diagnosis


def _classify(
    suspects: list[CellObservation], width: int
) -> tuple[str, str]:
    addrs = {s.addr for s in suspects}
    if len(suspects) == 1:
        s = suspects[0]
        if s.always_reads_zero:
            return "stuck-at-0", f"cell ({s.addr},{s.bit}) only ever reads 0"
        if s.always_reads_one:
            return "stuck-at-1", f"cell ({s.addr},{s.bit}) only ever reads 1"
        if s.wrong_zero > 0 and s.wrong_one == 0:
            return (
                "transition-or-state",
                f"cell ({s.addr},{s.bit}) intermittently holds 0 "
                "(transition fault or coupled victim)",
            )
        if s.wrong_one > 0 and s.wrong_zero == 0:
            return (
                "transition-or-state",
                f"cell ({s.addr},{s.bit}) intermittently holds 1 "
                "(transition fault or coupled victim)",
            )
        return (
            "coupled-victim",
            f"cell ({s.addr},{s.bit}) fails in both polarities "
            "(inversion coupling or disturb)",
        )
    if len(addrs) == 1:
        addr = next(iter(addrs))
        if len(suspects) >= max(2, width // 2):
            return (
                "address-or-word",
                f"word {addr} fails across {len(suspects)} bit positions",
            )
        return (
            "intra-word-coupling",
            f"{len(suspects)} cells of word {addr} fail",
        )
    if len(addrs) >= 2 and all(
        s.bit == suspects[0].bit for s in suspects
    ):
        return (
            "inter-word-coupling-or-column",
            f"bit {suspects[0].bit} fails at addresses {sorted(addrs)}",
        )
    return (
        "address-decoder",
        f"{len(suspects)} cells across addresses {sorted(addrs)} fail",
    )


def diagnose_memory(
    test: MarchTest, memory: Memory, *, derive_writes: bool = True
) -> Diagnosis:
    """Run *test* on *memory* with full record collection and analyse."""
    result: RunResult = run_march(
        test, memory, collect=True, derive_writes=derive_writes
    )
    return analyse_records(result.records, memory.width)
