"""Table 2 regeneration: symbolic coverage rows vs concrete engines.

The paper's Table 2 argument is symbolic — transparent-test fault
coverage is established over per-bit masks without committing to a
word width.  This module regenerates those rows with the width-generic
``symbolic`` engine (one evaluation per fault shape, valid for every
width at once) and *diffs every single verdict* against the concrete
``reference``/``batch`` engines at a sweep of widths, turning the
symbolic claim into a checked cross-engine property
(``python -m repro table2``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.march import MarchTest
from ..core.twm import twm_transform
from ..engine import get_engine
from ..library import catalog
from ..memory.injection import standard_fault_universe
from .coverage import _initial_words
from .reports import render_table

DEFAULT_WIDTHS = (4, 8, 16, 32)


@dataclass(frozen=True)
class Table2Row:
    """One fault class at one concrete width.

    ``detected`` counts the symbolic verdicts concretized at the row's
    width; ``mismatches`` maps each concrete engine to the number of
    per-fault verdicts that disagree with the symbolic ones (all zero
    when the Table 2 claim holds).
    """

    class_name: str
    width: int
    total: int
    detected: int
    mismatches: Mapping[str, int]

    @property
    def percent(self) -> float:
        return 100.0 * self.detected / self.total if self.total else 100.0

    @property
    def ok(self) -> bool:
        return all(count == 0 for count in self.mismatches.values())


@dataclass
class Table2Report:
    """The full symbolic-vs-concrete sweep of one transparent test."""

    test_name: str
    march_name: str
    widths: tuple[int, ...]
    n_words: int
    seed: int
    engines: tuple[str, ...]
    rows: list[Table2Row] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def total_faults(self) -> int:
        return sum(row.total for row in self.rows)

    @property
    def width_independent_classes(self) -> list[str]:
        """Classes whose symbolic coverage rate is identical at every
        swept width — the visible face of the Table 2 claim."""
        by_class: dict[str, set[float]] = {}
        for row in self.rows:
            by_class.setdefault(row.class_name, set()).add(round(row.percent, 6))
        return sorted(name for name, rates in by_class.items() if len(rates) == 1)

    def render(self) -> str:
        header = ["Class", "b", "Faults", "Symbolic coverage"]
        header += [f"vs {engine}" for engine in self.engines]
        body = []
        for row in self.rows:
            line = [
                row.class_name,
                row.width,
                row.total,
                f"{row.detected}/{row.total} ({row.percent:.2f}%)",
            ]
            for engine in self.engines:
                count = row.mismatches[engine]
                line.append("ok" if count == 0 else f"{count} differ")
            body.append(line)
        return render_table(
            header,
            body,
            title=(
                f"Table 2 — symbolic verdicts of {self.march_name} "
                f"(from {self.test_name}) vs concrete engines, "
                f"{self.n_words} words"
            ),
        )


def table2_report(
    name: str = "March C-",
    *,
    widths: Sequence[int] = DEFAULT_WIDTHS,
    n_words: int = 4,
    seed: int = 0,
    max_inter_pairs: int | None = 8,
    engines: Sequence[str] = ("reference", "batch"),
    test: MarchTest | None = None,
) -> Table2Report:
    """Cross-check symbolic verdicts against concrete engines.

    The march under evaluation is the TWMarch of catalog test *name*
    generated at the largest swept width (its checkerboard masks are
    width-polymorphic, so the same symbolic test runs at every width);
    pass *test* to evaluate an explicit march instead.  Per width, the
    standard fault universe (plus RDF/DRDF/AF) is enumerated at that
    width with fresh seeded content, the symbolic engine's verdicts
    are concretized, and every verdict is compared against each
    requested concrete engine.
    """
    widths = tuple(sorted(widths))
    if test is None:
        march = twm_transform(catalog.get(name), max(widths)).twmarch
    else:
        march = test
    symbolic = get_engine("symbolic")
    concrete = {engine: get_engine(engine) for engine in engines}
    report = Table2Report(
        name if test is None else march.name,
        march.name,
        widths,
        n_words,
        seed,
        tuple(engines),
    )
    for width in widths:
        words = _initial_words(n_words, width, None, seed)
        universe = standard_fault_universe(
            n_words,
            width,
            max_inter_pairs=max_inter_pairs,
            rng=random.Random(seed),
            include_rdf=True,
            include_af=True,
        )
        for class_name, faults in universe.items():
            verdicts = symbolic.detect_batch(march, n_words, width, words, faults)
            mismatches = {}
            for engine_name, engine in concrete.items():
                others = engine.detect_batch(march, n_words, width, words, faults)
                mismatches[engine_name] = sum(
                    1 for a, b in zip(verdicts, others) if a != b
                )
            report.rows.append(
                Table2Row(
                    class_name,
                    width,
                    len(faults),
                    sum(verdicts),
                    mismatches,
                )
            )
    return report
