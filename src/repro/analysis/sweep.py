"""Word-size coverage sweeps: one symbolic evaluation vs N campaigns.

The paper's Table 3 sweeps word sizes; its Table 2 argues that
transparent-test fault coverage does not depend on the word size at
all.  Put together, a *coverage* width sweep over a fixed fault
population should not cost N campaigns: the ``symbolic`` engine
evaluates every fault exactly once — width-generically — and each
:class:`~repro.engine.SymbolicVerdict` is projected onto every swept
width with a cheap :meth:`~repro.engine.SymbolicVerdict.concretize`
table lookup against that width's seeded content.

The swept population is the standard universe (plus RDF/DRDF/AF)
enumerated once at ``universe_width`` (default: the smallest swept
width, so every fault fits every width) — the Table 2 scenario of one
defect population observed under different word organisations.  The
initial memory content is still drawn *per width* (a ``b``-bit word
memory holds ``b``-bit random content), which is exactly what
``concretize(width, words)`` parameterizes.

Two sweep drivers produce the identical row structure, so they can be
diffed and raced:

* :func:`symbolic_width_sweep` — the one-shot path: one
  ``detect_symbolic`` evaluation per fault class for the *whole*
  sweep, then one concretization per fault per width;
* :func:`campaign_width_sweep` — the classic comparison leg: one full
  ``run_campaign`` of the same universe per width through a concrete
  engine.

Rows are bit-identical between the two by construction (the symbolic
engine is equivalence-tested against ``reference``/``batch``), and the
one-shot path amortizes all replay work across the sweep —
``benchmarks/bench_table3_wordsize_sweep.py`` races the two legs and
gates the speedup.

Both drivers dispatch whole fault classes, never individual faults:
the population is streaming :class:`~repro.memory.injection.FaultClass`
descriptors, the symbolic leg prices each class as a handful of packed
family replays (:meth:`~repro.engine.symbolic._SymbolicCampaign.
_build_family`), and the campaign leg's ``run_campaign`` hands each
descriptor to the batch engine's class kernels
(:meth:`~repro.engine.BatchEngine.detect_class_batch`).  The SAF
kernel accepts classes *narrower* than the campaign width, so the
sweep's cross-width scenario — one population enumerated at
``universe_width``, simulated at every swept width — stays on the
packed path for its largest class at every width.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core.march import MarchTest
from ..engine import get_engine
from ..memory.injection import standard_fault_universe
from .coverage import _initial_words, compare_flow, run_campaign
from .reports import render_table

SWEEP_WIDTHS = (4, 8, 16, 32)


@dataclass(frozen=True)
class WidthSweepRow:
    """Coverage of one fault class at one swept width."""

    width: int
    class_name: str
    total: int
    detected: int

    @property
    def percent(self) -> float:
        return 100.0 * self.detected / self.total if self.total else 100.0


@dataclass
class WidthSweepReport:
    """One full word-size coverage sweep of a transparent march."""

    march_name: str
    n_words: int
    widths: tuple[int, ...]
    universe_width: int
    seed: int
    driver: str
    rows: list[WidthSweepRow] = field(default_factory=list)
    seconds: float = 0.0

    def row_map(self) -> dict[tuple[int, str], WidthSweepRow]:
        """``(width, class) -> row`` for cross-driver comparison."""
        return {(row.width, row.class_name): row for row in self.rows}

    def coverage_vector(self, width: int) -> dict[str, float]:
        return {
            row.class_name: row.percent
            for row in self.rows
            if row.width == width
        }

    @property
    def width_independent_classes(self) -> list[str]:
        """Classes whose coverage rate is identical at every swept
        width — the Table 2 width-independence claim, as data."""
        by_class: dict[str, set[float]] = {}
        for row in self.rows:
            by_class.setdefault(row.class_name, set()).add(
                round(row.percent, 6)
            )
        return sorted(
            name for name, rates in by_class.items() if len(rates) == 1
        )

    def render(self) -> str:
        classes = sorted({row.class_name for row in self.rows})
        rows = self.row_map()
        body = []
        for class_name in classes:
            line = [class_name]
            for width in self.widths:
                row = rows.get((width, class_name))
                line.append("-" if row is None else f"{row.percent:.2f}%")
            body.append(line)
        return render_table(
            ["Class"] + [f"b={w}" for w in self.widths],
            body,
            title=(
                f"Word-size coverage sweep of {self.march_name} "
                f"({self.n_words} words, universe at b="
                f"{self.universe_width}, driver: {self.driver}, "
                f"{self.seconds:.3f}s)"
            ),
        )


def _sweep_universe(
    n_words: int,
    universe_width: int,
    seed: int,
    max_inter_pairs: int | None,
):
    """The width-sweep fault population: described once (streaming
    class descriptors — nothing is materialized per fault), evaluated
    at every swept width by both drivers."""
    return standard_fault_universe(
        n_words,
        universe_width,
        max_inter_pairs=max_inter_pairs,
        rng=random.Random(seed),
        include_rdf=True,
        include_af=True,
    )


def symbolic_width_sweep(
    march: MarchTest,
    n_words: int,
    *,
    widths: Sequence[int] = SWEEP_WIDTHS,
    universe_width: int | None = None,
    seed: int = 0,
    max_inter_pairs: int | None = 8,
) -> WidthSweepReport:
    """One-shot coverage sweep: one symbolic evaluation per class plus
    one cheap concretization per ``(fault, width)``.

    Each :class:`~repro.engine.SymbolicVerdict` holds for every width
    its fault fits in, so adding a width to the sweep costs only the
    per-width random content and one table lookup per fault — not
    another campaign.  Within the evaluation, replays are additionally
    shared between faults of equal shape.
    """
    widths = tuple(sorted(widths))
    if universe_width is None:
        universe_width = min(widths)
    engine = get_engine("symbolic")
    report = WidthSweepReport(
        march.name, n_words, widths, universe_width, seed, driver="symbolic"
    )
    # The population is identical (and identically priced) in both
    # drivers, so ``seconds`` times the sweep evaluation itself.
    universe = _sweep_universe(n_words, universe_width, seed, max_inter_pairs)
    started = time.perf_counter()
    words_at = {
        width: _initial_words(n_words, width, None, seed) for width in widths
    }
    for class_name, faults in universe.items():
        verdicts = engine.detect_symbolic(march, n_words, faults)
        # The constant majority (detected for every width and content)
        # is counted once for the whole sweep; only genuinely
        # (width, words)-dependent verdicts are concretized per width.
        constant = sum(1 for verdict in verdicts if verdict.constant)
        variable = [
            verdict for verdict in verdicts if verdict.constant is None
        ]
        for width in widths:
            words = words_at[width]
            detected = constant + sum(
                1
                for verdict in variable
                if verdict.concretize(width, words)
            )
            report.rows.append(
                WidthSweepRow(width, class_name, len(faults), detected)
            )
    report.seconds = time.perf_counter() - started
    return report


def campaign_width_sweep(
    march: MarchTest,
    n_words: int,
    *,
    widths: Sequence[int] = SWEEP_WIDTHS,
    universe_width: int | None = None,
    seed: int = 0,
    max_inter_pairs: int | None = 8,
    engine: str = "batch",
) -> WidthSweepReport:
    """Classic comparison leg: one concrete campaign of the same fault
    population per width."""
    widths = tuple(sorted(widths))
    if universe_width is None:
        universe_width = min(widths)
    report = WidthSweepReport(
        march.name,
        n_words,
        widths,
        universe_width,
        seed,
        driver=f"campaign/{engine}",
    )
    universe = _sweep_universe(n_words, universe_width, seed, max_inter_pairs)
    started = time.perf_counter()
    for width in widths:
        words = _initial_words(n_words, width, None, seed)
        flow = compare_flow(march, n_words, width, initial=words)
        campaign = run_campaign(
            flow,
            universe,
            flow_name=f"{march.name} b={width}",
            engine=engine,
        )
        for class_name, coverage in campaign.classes.items():
            report.rows.append(
                WidthSweepRow(
                    width, class_name, coverage.total, coverage.detected
                )
            )
    report.seconds = time.perf_counter() - started
    return report
