"""Analysis instruments: state graphs, coverage campaigns, tables."""

from .audit import AuditResult, audit_catalog, audit_entry
from .coverage import (
    AliasingFlow,
    CampaignReport,
    ClassCoverage,
    CompareFlow,
    SignatureFlow,
    aliasing_flow,
    compare_flow,
    compare_reports,
    run_campaign,
    signature_flow,
)
from .diagnosis import (
    CellObservation,
    Diagnosis,
    analyse_records,
    diagnose_memory,
)
from .reports import percent, render_table
from .states import (
    IntraWordConditions,
    PairConditionCoverage,
    TwoCellEvent,
    intra_word_conditions,
    pair_condition_coverage,
    state_sequence,
    two_cell_trace,
)
from .sweep import (
    SWEEP_WIDTHS,
    WidthSweepReport,
    WidthSweepRow,
    campaign_width_sweep,
    symbolic_width_sweep,
)
from .symbolic import (
    SymbolicContent,
    SymbolicRow,
    SymbolicTrace,
    TraceStep,
    symbolic_rows,
    symbolic_trace,
    table1_rows,
)
from .table2 import Table2Report, Table2Row, table2_report

__all__ = [
    "AliasingFlow",
    "AuditResult",
    "CampaignReport",
    "CellObservation",
    "ClassCoverage",
    "CompareFlow",
    "Diagnosis",
    "IntraWordConditions",
    "PairConditionCoverage",
    "SWEEP_WIDTHS",
    "SignatureFlow",
    "SymbolicContent",
    "SymbolicRow",
    "SymbolicTrace",
    "Table2Report",
    "Table2Row",
    "TraceStep",
    "TwoCellEvent",
    "WidthSweepReport",
    "WidthSweepRow",
    "aliasing_flow",
    "analyse_records",
    "audit_catalog",
    "audit_entry",
    "campaign_width_sweep",
    "compare_flow",
    "compare_reports",
    "diagnose_memory",
    "intra_word_conditions",
    "pair_condition_coverage",
    "percent",
    "render_table",
    "run_campaign",
    "signature_flow",
    "state_sequence",
    "symbolic_rows",
    "symbolic_trace",
    "symbolic_width_sweep",
    "table1_rows",
    "table2_report",
    "two_cell_trace",
]
