"""Analysis instruments: state graphs, coverage campaigns, tables."""

from .coverage import (
    AliasingFlow,
    CampaignReport,
    ClassCoverage,
    CompareFlow,
    SignatureFlow,
    aliasing_flow,
    compare_flow,
    compare_reports,
    run_campaign,
    signature_flow,
)
from .diagnosis import (
    CellObservation,
    Diagnosis,
    analyse_records,
    diagnose_memory,
)
from .reports import percent, render_table
from .states import (
    IntraWordConditions,
    PairConditionCoverage,
    TwoCellEvent,
    intra_word_conditions,
    pair_condition_coverage,
    state_sequence,
    two_cell_trace,
)
from .symbolic import SymbolicRow, symbolic_rows, table1_rows

__all__ = [
    "AliasingFlow",
    "CampaignReport",
    "CellObservation",
    "ClassCoverage",
    "CompareFlow",
    "Diagnosis",
    "IntraWordConditions",
    "PairConditionCoverage",
    "SignatureFlow",
    "SymbolicRow",
    "TwoCellEvent",
    "aliasing_flow",
    "analyse_records",
    "compare_flow",
    "compare_reports",
    "diagnose_memory",
    "intra_word_conditions",
    "pair_condition_coverage",
    "percent",
    "render_table",
    "run_campaign",
    "signature_flow",
    "state_sequence",
    "symbolic_rows",
    "table1_rows",
    "two_cell_trace",
]
