"""Fault-simulation campaigns and coverage reporting.

A *flow* is a callable that, given a single fault, builds a fresh
faulty memory, runs a detection procedure, and reports whether the
fault was detected.  Campaigns sweep a fault universe (grouped by
class) through a flow and tabulate per-class coverage — the instrument
behind the paper's Section 5 coverage-equality theorem (benchmark E7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..bist.controller import TransparentBist
from ..bist.executor import run_march
from ..core.march import MarchTest
from ..memory.faults import Fault
from ..memory.injection import FaultyMemory

Flow = Callable[[Fault], bool]


@dataclass(frozen=True)
class ClassCoverage:
    """Detection statistics for one fault class."""

    name: str
    total: int
    detected: int

    @property
    def missed(self) -> int:
        return self.total - self.detected

    @property
    def percent(self) -> float:
        return 100.0 * self.detected / self.total if self.total else 100.0

    def render(self) -> str:
        return f"{self.name}: {self.detected}/{self.total} ({self.percent:.2f}%)"


@dataclass
class CampaignReport:
    """Per-class coverage of one campaign."""

    flow_name: str
    classes: dict[str, ClassCoverage] = field(default_factory=dict)
    undetected: dict[str, list[Fault]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(c.total for c in self.classes.values())

    @property
    def detected(self) -> int:
        return sum(c.detected for c in self.classes.values())

    @property
    def percent(self) -> float:
        return 100.0 * self.detected / self.total if self.total else 100.0

    def coverage_vector(self) -> dict[str, float]:
        return {name: c.percent for name, c in self.classes.items()}

    def render(self) -> str:
        lines = [f"campaign: {self.flow_name}"]
        for name in sorted(self.classes):
            lines.append("  " + self.classes[name].render())
        lines.append(
            f"  overall: {self.detected}/{self.total} ({self.percent:.2f}%)"
        )
        return "\n".join(lines)


def run_campaign(
    flow: Flow,
    universe: dict[str, Sequence[Fault]],
    *,
    flow_name: str = "flow",
    keep_undetected: int = 16,
) -> CampaignReport:
    """Simulate every fault in *universe* through *flow*."""
    report = CampaignReport(flow_name)
    for class_name, faults in universe.items():
        detected = 0
        missed: list[Fault] = []
        for fault in faults:
            if flow(fault):
                detected += 1
            elif len(missed) < keep_undetected:
                missed.append(fault)
        report.classes[class_name] = ClassCoverage(
            class_name, len(faults), detected
        )
        if missed:
            report.undetected[class_name] = missed
    return report


# ---------------------------------------------------------------------------
# Flow factories
# ---------------------------------------------------------------------------


def _initial_words(
    n_words: int, width: int, initial: Sequence[int] | int | None, seed: int
) -> list[int]:
    if initial is None:
        rng = random.Random(seed)
        return [rng.randrange(1 << width) for _ in range(n_words)]
    if isinstance(initial, int):
        return [initial & ((1 << width) - 1)] * n_words
    return list(initial)


def compare_flow(
    test: MarchTest,
    n_words: int,
    width: int,
    *,
    initial: Sequence[int] | int | None = None,
    seed: int = 0,
    derive_writes: bool = True,
) -> Flow:
    """Alias-free detection: any read differing from the fault-free
    value counts as detection.

    ``initial`` sets the memory content before injection (an int fills
    uniformly, ``None`` draws random content — the realistic transparent
    scenario).  The reference snapshot for expected values is taken
    *after* injection, exactly what a transparent BIST observes.
    """
    words = _initial_words(n_words, width, initial, seed)

    def flow(fault: Fault) -> bool:
        memory = FaultyMemory(n_words, width, [fault])
        memory.load(words)
        result = run_march(
            test,
            memory,
            stop_on_mismatch=True,
            derive_writes=derive_writes,
        )
        return result.detected

    return flow


def signature_flow(
    test: MarchTest,
    prediction: MarchTest,
    n_words: int,
    width: int,
    *,
    misr_width: int = 16,
    initial: Sequence[int] | int | None = None,
    seed: int = 0,
) -> Flow:
    """Realistic two-phase transparent BIST detection (MISR compare,
    aliasing possible)."""
    words = _initial_words(n_words, width, initial, seed)
    controller = TransparentBist(test, prediction, misr_width=misr_width)

    def flow(fault: Fault) -> bool:
        memory = FaultyMemory(n_words, width, [fault])
        memory.load(words)
        return controller.run(memory).detected

    return flow


def aliasing_flow(
    test: MarchTest,
    prediction: MarchTest,
    n_words: int,
    width: int,
    *,
    misr_width: int = 16,
    initial: Sequence[int] | int | None = None,
    seed: int = 0,
) -> Callable[[Fault], tuple[bool, bool]]:
    """Like :func:`signature_flow` but returns ``(stream, signature)``
    detection flags so aliasing events can be counted."""
    words = _initial_words(n_words, width, initial, seed)
    controller = TransparentBist(test, prediction, misr_width=misr_width)

    def flow(fault: Fault) -> tuple[bool, bool]:
        memory = FaultyMemory(n_words, width, [fault])
        memory.load(words)
        outcome = controller.run(memory)
        return outcome.stream_detected, outcome.detected

    return flow


def compare_reports(
    a: CampaignReport, b: CampaignReport
) -> list[tuple[str, float, float, float]]:
    """Per-class coverage delta between two campaigns.

    Rows are ``(class, a%, b%, a% - b%)`` over the classes the reports
    share; used to check the Section 5 equality claim.
    """
    rows = []
    for name in sorted(set(a.classes) & set(b.classes)):
        pa = a.classes[name].percent
        pb = b.classes[name].percent
        rows.append((name, pa, pb, pa - pb))
    return rows
