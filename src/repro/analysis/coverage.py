"""Fault-simulation campaigns and coverage reporting.

A *flow* is a callable that, given a single fault, builds a fresh
faulty memory, runs a detection procedure, and reports whether the
fault was detected.  Campaigns sweep a fault universe (grouped by
class) through a flow and tabulate per-class coverage — the instrument
behind the paper's Section 5 coverage-equality theorem (benchmark E7).

Campaigns can be executed through a pluggable simulation engine
(``run_campaign(..., engine="batch")``): when the flow is a
structure-carrying :class:`CompareFlow`, :class:`SignatureFlow` or
:class:`AliasingFlow`, the whole per-class fault sweep is handed to
:meth:`repro.engine.Engine.detect_batch` /
:meth:`repro.engine.Engine.detect_signature_batch` /
:meth:`repro.engine.Engine.detect_aliasing_batch`, which the
vectorized batch backend evaluates word-parallel instead of op-by-op.
With ``jobs=N`` the per-class sweeps are additionally sharded across
worker processes (:class:`repro.engine.CampaignRunner`) and merged
back deterministically — ``jobs=1`` and ``jobs=N`` produce
bit-identical reports.  Every engine is equivalence-tested to produce
bit-identical coverage vectors (see ``tests/test_engine.py``).

An :class:`AliasingFlow` campaign counts *pair verdicts*: each fault
reports ``(stream_detected, signature_detected)``, so the per-class
coverage additionally carries how many faults the ideal compare oracle
saw and how many of those *aliased* in the MISR (stream-detected but
signature-missed) — the Section 5 quantity of interest.  Verdicts are
normalized strictly: a bare callable flow must return real booleans,
and anything else (notably a tuple, which is always truthy) raises
``TypeError`` instead of silently counting as detected.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..bist.controller import TransparentBist
from ..bist.executor import run_march
from ..core.march import MarchTest
from ..engine import (
    AliasingWork,
    CampaignRunner,
    CompareWork,
    ContextStats,
    Engine,
    FaultPlan,
    FaultToleranceStats,
    PackedPairVerdicts,
    PackedVerdicts,
    RetryPolicy,
    SignatureWork,
    get_engine,
)
from ..memory.faults import Fault
from ..memory.injection import FaultyMemory

Flow = Callable[[Fault], bool]
PairVerdict = tuple[bool, bool]


@dataclass(frozen=True)
class ClassCoverage:
    """Detection statistics for one fault class.

    ``detected`` counts the campaign's primary oracle (the signature
    verdict for a pair-verdict aliasing campaign).  Pair-verdict
    campaigns additionally fill ``stream_detected`` (faults the ideal
    alias-free compare oracle saw) and ``aliased`` (stream-detected but
    signature-missed); both stay ``None`` for single-verdict flows.
    """

    name: str
    total: int
    detected: int
    stream_detected: int | None = None
    aliased: int | None = None

    @property
    def missed(self) -> int:
        return self.total - self.detected

    @property
    def percent(self) -> float:
        return 100.0 * self.detected / self.total if self.total else 100.0

    @property
    def aliased_percent(self) -> float:
        """Aliasing rate of the class (0.0 for single-verdict flows)."""
        if not self.aliased or not self.total:
            return 0.0
        return 100.0 * self.aliased / self.total

    def render(self) -> str:
        line = f"{self.name}: {self.detected}/{self.total} ({self.percent:.2f}%)"
        if self.aliased is not None:
            line += (
                f", stream {self.stream_detected}/{self.total}"
                f", aliased {self.aliased} ({self.aliased_percent:.2f}%)"
            )
        return line


@dataclass(frozen=True)
class ClassStats:
    """Execution statistics for one fault class of a campaign."""

    name: str
    total: int
    seconds: float
    engine: str

    @property
    def faults_per_second(self) -> float:
        return self.total / self.seconds if self.seconds > 0 else float("inf")


@dataclass
class CampaignReport:
    """Per-class coverage of one campaign."""

    flow_name: str
    classes: dict[str, ClassCoverage] = field(default_factory=dict)
    undetected: dict[str, list[Fault]] = field(default_factory=dict)
    stats: dict[str, ClassStats] = field(default_factory=dict)
    engine: str | None = None
    jobs: int = 1
    # Campaign-context cache counters of the run (None for bare
    # callable flows, which bypass the engine's batch paths entirely):
    # how many contexts were built, how long the builds took, and how
    # many chunk/class evaluations hit a warm context instead.
    context_stats: ContextStats | None = None
    # What the supervised runner had to do to keep the campaign alive
    # (retries, respawns, degraded chunks, wall-clock lost) — all zero
    # on an undisturbed run, None for bare callable flows.
    fault_tolerance: FaultToleranceStats | None = None

    @property
    def total(self) -> int:
        return sum(c.total for c in self.classes.values())

    @property
    def detected(self) -> int:
        return sum(c.detected for c in self.classes.values())

    @property
    def percent(self) -> float:
        return 100.0 * self.detected / self.total if self.total else 100.0

    @property
    def has_pair_verdicts(self) -> bool:
        """True when at least one class carries aliasing statistics."""
        return any(c.aliased is not None for c in self.classes.values())

    @property
    def stream_detected(self) -> int:
        return sum(c.stream_detected or 0 for c in self.classes.values())

    @property
    def aliased(self) -> int:
        return sum(c.aliased or 0 for c in self.classes.values())

    @property
    def aliased_percent(self) -> float:
        """Overall aliasing rate over the pair-verdict classes."""
        total = sum(
            c.total for c in self.classes.values() if c.aliased is not None
        )
        return 100.0 * self.aliased / total if total else 0.0

    @property
    def seconds(self) -> float:
        return sum(s.seconds for s in self.stats.values())

    def coverage_vector(self) -> dict[str, float]:
        return {name: c.percent for name, c in self.classes.items()}

    def aliasing_vector(self) -> dict[str, float]:
        """Per-class aliasing rates of the pair-verdict classes."""
        return {
            name: c.aliased_percent
            for name, c in self.classes.items()
            if c.aliased is not None
        }

    def render(self) -> str:
        lines = [f"campaign: {self.flow_name}"]
        for name in sorted(self.classes):
            lines.append("  " + self.classes[name].render())
        lines.append(
            f"  overall: {self.detected}/{self.total} ({self.percent:.2f}%)"
        )
        if self.has_pair_verdicts:
            lines.append(
                f"  aliased: {self.aliased}/{self.total} "
                f"({self.aliased_percent:.2f}%)"
            )
        if self.context_stats is not None:
            lines.append(f"  contexts: {self.context_stats.render()}")
        if self.fault_tolerance is not None and self.fault_tolerance.any:
            lines.append(f"  faults: {self.fault_tolerance.render()}")
        return "\n".join(lines)


ProgressCallback = Callable[[ClassCoverage, ClassStats], None]


def _verdict_as_bool(verdict, flow_name: str) -> bool:
    """Strictly normalize one detection verdict.

    Any non-empty tuple — e.g. the ``(stream, signature)`` pair of an
    aliasing flow — is truthy, so counting truthiness would silently
    report 100% coverage even when every fault is missed.  Anything
    but a real bool is rejected loudly instead.
    """
    if isinstance(verdict, bool):
        return verdict
    raise TypeError(
        f"flow {flow_name!r} returned {verdict!r} "
        f"({type(verdict).__name__}) instead of a bool verdict; "
        "pair-verdict (stream, signature) flows must be structured "
        "AliasingFlow instances so run_campaign counts aliasing "
        "instead of tuple truthiness"
    )


def _verdict_as_pair(verdict, flow_name: str) -> PairVerdict:
    """Strictly normalize one ``(stream, signature)`` pair verdict."""
    if (
        isinstance(verdict, tuple)
        and len(verdict) == 2
        and isinstance(verdict[0], bool)
        and isinstance(verdict[1], bool)
    ):
        return verdict
    raise TypeError(
        f"aliasing flow {flow_name!r} returned {verdict!r}; expected a "
        "(stream_detected, signature_detected) pair of bools"
    )


def run_campaign(
    flow: Flow,
    universe: dict[str, Sequence[Fault]],
    *,
    flow_name: str = "flow",
    keep_undetected: int = 16,
    engine: str | Engine | None = None,
    jobs: int = 1,
    runner: CampaignRunner | None = None,
    retry: RetryPolicy | None = None,
    chaos: FaultPlan | None = None,
    degrade: bool = True,
    progress: ProgressCallback | None = None,
) -> CampaignReport:
    """Simulate every fault in *universe* through *flow*.

    With ``engine`` set and a structure-carrying flow, each class is
    evaluated through the engine's batch path —
    :meth:`Engine.detect_batch` for :class:`CompareFlow`,
    :meth:`Engine.detect_signature_batch` for :class:`SignatureFlow`,
    :meth:`Engine.detect_aliasing_batch` for :class:`AliasingFlow`
    (the ``"batch"`` engine vectorizes all three); any other flow falls
    back to per-fault calls regardless of the engine.  ``jobs > 1``
    additionally shards each class across that many worker processes
    with a deterministic merge, so reports are bit-identical to
    ``jobs=1``.  ``progress`` receives the per-class coverage and
    timing as soon as each class completes, so long campaigns expose
    early statistics instead of a single final report.

    Batch-path campaigns run through a :class:`CampaignRunner` whose
    context cache amortizes the per-campaign engine state (bit-planes,
    weight tables, fault-free baselines) across every class and chunk;
    the counters land in :attr:`CampaignReport.context_stats`.  Pass a
    *runner* to share that state across **several** campaigns — e.g.
    one per oracle mode over the same session — with persistent worker
    processes; a caller-supplied runner is left open (close it
    yourself) and its engine is used when ``engine`` is not given.

    Sharded execution is fault tolerant: chunks are supervised leases,
    retried per *retry* (a :class:`~repro.engine.RetryPolicy`) when a
    worker crashes, hangs or corrupts a result, and — unless
    ``degrade=False`` — run in-process once retries exhaust, so one
    bad worker degrades throughput, never the report.  *chaos* injects
    deterministic worker faults (tests/benches).  These three apply
    when the campaign owns its runner; a shared *runner* carries its
    own policy.  Whatever supervision did lands in
    :attr:`CampaignReport.fault_tolerance`.

    An :class:`AliasingFlow` yields a *pair-verdict* campaign:
    ``detected`` counts the realistic signature oracle, and every
    :class:`ClassCoverage` additionally carries ``stream_detected`` and
    ``aliased`` counts.  Verdicts are normalized strictly — a bare
    callable returning anything but a bool (e.g. a verdict tuple)
    raises :class:`TypeError` instead of being counted as truthy.
    """
    if runner is not None and engine is None:
        eng = runner.engine
    else:
        eng = get_engine(engine) if engine is not None else None
    if runner is not None and eng is not None and runner.engine is not eng:
        raise ValueError(
            f"shared runner executes engine {runner.engine.name!r} but the "
            f"campaign requested {getattr(eng, 'name', eng)!r}"
        )
    work = flow.work_unit() if (
        eng is not None
        and isinstance(flow, (CompareFlow, SignatureFlow, AliasingFlow))
    ) else None
    pair_verdicts = isinstance(flow, AliasingFlow)
    # Attribute stats to the backend that actually ran: a bare callable
    # cannot be batched, so the engine is bypassed entirely.
    engine_label = eng.name if work is not None else "flow"
    owns_runner = False
    if work is None:
        runner = None  # per-fault flows bypass the engine machinery
    elif runner is None:
        runner = CampaignRunner(
            eng, jobs, retry=retry, chaos=chaos, degrade=degrade
        )
        owns_runner = True
    report = CampaignReport(
        flow_name,
        engine=eng.name if work is not None else None,
        # The runner may demote itself to inline execution (e.g. an
        # unregistered engine instance); report what actually ran.
        jobs=runner.jobs if runner is not None else 1,
    )
    if runner is not None:
        # A no-op when a shared runner already bound this work and
        # universe (the mixed-mode fast path keeping workers warm).
        runner.bind(work, universe)
    try:
        for class_name, faults in universe.items():
            started = time.perf_counter()
            detected = 0
            stream_hits = 0
            aliased = 0
            missed: list[Fault] = []
            if runner is not None:
                # Packed end to end: the runner hands back the class's
                # verdict bitset, the counters are popcounts, and only
                # the kept-missed sample (<= keep_undetected) ever
                # materializes a fault object here.
                packed = runner.detect_class_packed(
                    work, faults, class_name=class_name
                )
                if len(packed) != len(faults):
                    raise RuntimeError(
                        f"class {class_name!r} returned {len(packed)} "
                        f"verdicts for {len(faults)} faults"
                    )
                if pair_verdicts:
                    if not isinstance(packed, PackedPairVerdicts):
                        raise TypeError(
                            f"aliasing flow {flow_name!r} produced "
                            f"{type(packed).__name__}; expected packed "
                            "(stream, signature) pair verdicts"
                        )
                    stream_hits = packed.stream_count()
                    aliased = packed.aliased_count()
                else:
                    if not isinstance(packed, PackedVerdicts):
                        raise TypeError(
                            f"flow {flow_name!r} produced "
                            f"{type(packed).__name__}; expected packed "
                            "bool verdicts"
                        )
                detected = packed.count()
                missed = [
                    faults[i] for i in packed.missed_indices(keep_undetected)
                ]
            else:
                verdicts = [flow(fault) for fault in faults]
                for fault, verdict in zip(faults, verdicts, strict=True):
                    if pair_verdicts:
                        stream, hit = _verdict_as_pair(verdict, flow_name)
                        if stream:
                            stream_hits += 1
                            if not hit:
                                aliased += 1
                    else:
                        hit = _verdict_as_bool(verdict, flow_name)
                    if hit:
                        detected += 1
                    elif len(missed) < keep_undetected:
                        missed.append(fault)
            coverage = ClassCoverage(
                class_name,
                len(faults),
                detected,
                stream_detected=stream_hits if pair_verdicts else None,
                aliased=aliased if pair_verdicts else None,
            )
            stats = ClassStats(
                class_name,
                len(faults),
                time.perf_counter() - started,
                engine_label,
            )
            report.classes[class_name] = coverage
            report.stats[class_name] = stats
            if missed:
                report.undetected[class_name] = missed
            if progress is not None:
                progress(coverage, stats)
    finally:
        if runner is not None:
            # Per-campaign deltas, drained even when the campaign
            # raises — a shared runner must not leak this campaign's
            # counters into the next campaign's attribution.
            report.context_stats = runner.take_stats()
            report.fault_tolerance = runner.take_fault_stats()
            if owns_runner:
                runner.close()
    return report


# ---------------------------------------------------------------------------
# Flow factories
# ---------------------------------------------------------------------------


def _initial_words(
    n_words: int, width: int, initial: Sequence[int] | int | None, seed: int
) -> list[int]:
    mask = (1 << width) - 1
    if initial is None:
        rng = random.Random(seed)
        return [rng.randrange(1 << width) for _ in range(n_words)]
    if isinstance(initial, int):
        return [initial & mask] * n_words
    words = [word & mask for word in initial]
    if len(words) != n_words:
        raise ValueError(
            f"initial content has {len(words)} words but the memory "
            f"holds {n_words}"
        )
    return words


class CompareFlow:
    """Alias-free compare-oracle flow with inspectable structure.

    Calling it with a fault behaves like the classic closure (fresh
    faulty memory, ``stop_on_mismatch`` march run); the exposed
    ``test`` / ``n_words`` / ``width`` / ``words`` / ``derive_writes``
    attributes let :func:`run_campaign` hand whole fault classes to an
    engine's batch path instead.
    """

    def __init__(
        self,
        test: MarchTest,
        n_words: int,
        width: int,
        words: Sequence[int],
        derive_writes: bool = True,
    ) -> None:
        self.test = test
        self.n_words = n_words
        self.width = width
        self.words = list(words)
        self.derive_writes = derive_writes

    def __call__(self, fault: Fault) -> bool:
        memory = FaultyMemory(self.n_words, self.width, [fault])
        memory.load(self.words)
        result = run_march(
            self.test,
            memory,
            stop_on_mismatch=True,
            derive_writes=self.derive_writes,
        )
        return result.detected

    def work_unit(self) -> CompareWork:
        """The picklable campaign work unit handed to engines/shards."""
        return CompareWork(
            self.test,
            self.n_words,
            self.width,
            tuple(self.words),
            self.derive_writes,
        )


def compare_flow(
    test: MarchTest,
    n_words: int,
    width: int,
    *,
    initial: Sequence[int] | int | None = None,
    seed: int = 0,
    derive_writes: bool = True,
) -> CompareFlow:
    """Alias-free detection: any read differing from the fault-free
    value counts as detection.

    ``initial`` sets the memory content before injection (an int fills
    uniformly, ``None`` draws random content — the realistic transparent
    scenario).  The reference snapshot for expected values is taken
    *after* injection, exactly what a transparent BIST observes.
    """
    words = _initial_words(n_words, width, initial, seed)
    return CompareFlow(test, n_words, width, words, derive_writes)


class SignatureFlow:
    """Realistic two-phase transparent BIST flow with inspectable
    structure (MISR compare, aliasing possible).

    Calling it with a fault behaves like the classic closure (fresh
    faulty memory, full :class:`TransparentBist` session); the exposed
    ``test`` / ``prediction`` / ``n_words`` / ``width`` / ``words`` /
    ``misr_width`` / ``misr_seed`` attributes let
    :func:`run_campaign` hand whole fault classes to an engine's
    batched signature oracle instead.
    """

    def __init__(
        self,
        test: MarchTest,
        prediction: MarchTest | None,
        n_words: int,
        width: int,
        words: Sequence[int],
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
        engine: str | Engine | None = None,
    ) -> None:
        self.controller = TransparentBist(
            test,
            prediction,
            misr_width=misr_width,
            misr_seed=misr_seed,
            engine=engine,
        )
        self.test = self.controller.test
        self.prediction = self.controller.prediction
        self.n_words = n_words
        self.width = width
        self.words = list(words)
        self.misr_width = misr_width
        self.misr_seed = misr_seed

    def __call__(self, fault: Fault) -> bool:
        memory = FaultyMemory(self.n_words, self.width, [fault])
        memory.load(self.words)
        return self.controller.run(memory).detected

    def work_unit(self) -> SignatureWork:
        """The picklable campaign work unit handed to engines/shards."""
        return SignatureWork(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            tuple(self.words),
            self.misr_width,
            self.misr_seed,
        )


def signature_flow(
    test: MarchTest,
    prediction: MarchTest,
    n_words: int,
    width: int,
    *,
    misr_width: int = 16,
    misr_seed: int = 0,
    initial: Sequence[int] | int | None = None,
    seed: int = 0,
    engine: str | Engine | None = None,
) -> SignatureFlow:
    """Realistic two-phase transparent BIST detection (MISR compare,
    aliasing possible)."""
    words = _initial_words(n_words, width, initial, seed)
    return SignatureFlow(
        test,
        prediction,
        n_words,
        width,
        words,
        misr_width=misr_width,
        misr_seed=misr_seed,
        engine=engine,
    )


class AliasingFlow:
    """Pair-verdict transparent BIST flow with inspectable structure.

    Calling it with a fault runs a full :class:`TransparentBist`
    session and returns the ``(stream_detected, signature_detected)``
    pair, so aliasing events (stream-detected but signature-missed)
    can be counted; the exposed ``test`` / ``prediction`` /
    ``n_words`` / ``width`` / ``words`` / ``misr_width`` /
    ``misr_seed`` attributes let :func:`run_campaign` hand whole fault
    classes to an engine's batched aliasing oracle instead.
    """

    def __init__(
        self,
        test: MarchTest,
        prediction: MarchTest | None,
        n_words: int,
        width: int,
        words: Sequence[int],
        *,
        misr_width: int = 16,
        misr_seed: int = 0,
        engine: str | Engine | None = None,
    ) -> None:
        self.controller = TransparentBist(
            test,
            prediction,
            misr_width=misr_width,
            misr_seed=misr_seed,
            engine=engine,
        )
        self.test = self.controller.test
        self.prediction = self.controller.prediction
        self.n_words = n_words
        self.width = width
        self.words = list(words)
        self.misr_width = misr_width
        self.misr_seed = misr_seed

    def __call__(self, fault: Fault) -> PairVerdict:
        memory = FaultyMemory(self.n_words, self.width, [fault])
        memory.load(self.words)
        outcome = self.controller.run(memory)
        return outcome.stream_detected, outcome.detected

    def work_unit(self) -> AliasingWork:
        """The picklable campaign work unit handed to engines/shards."""
        return AliasingWork(
            self.test,
            self.prediction,
            self.n_words,
            self.width,
            tuple(self.words),
            self.misr_width,
            self.misr_seed,
        )


def aliasing_flow(
    test: MarchTest,
    prediction: MarchTest,
    n_words: int,
    width: int,
    *,
    misr_width: int = 16,
    misr_seed: int = 0,
    initial: Sequence[int] | int | None = None,
    seed: int = 0,
    engine: str | Engine | None = None,
) -> AliasingFlow:
    """Like :func:`signature_flow` but returns ``(stream, signature)``
    detection flags so aliasing events can be counted.  ``misr_seed``
    seeds both MISRs exactly as in :func:`signature_flow`, so aliasing
    and signature sessions can be configured consistently."""
    words = _initial_words(n_words, width, initial, seed)
    return AliasingFlow(
        test,
        prediction,
        n_words,
        width,
        words,
        misr_width=misr_width,
        misr_seed=misr_seed,
        engine=engine,
    )


def compare_reports(
    a: CampaignReport, b: CampaignReport
) -> list[tuple[str, float, float, float]]:
    """Per-class coverage delta between two campaigns.

    Rows are ``(class, a%, b%, a% - b%)`` over the classes the reports
    share; used to check the Section 5 equality claim.
    """
    rows = []
    for name in sorted(set(a.classes) & set(b.classes)):
        pa = a.classes[name].percent
        pb = b.classes[name].percent
        rows.append((name, pa, pb, pa - pb))
    return rows
