"""Plain-text table rendering shared by examples and benchmarks."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """A boxed ASCII table; every cell is str()-rendered."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (w + 2) for w in widths) + "+"

    def fmt(row: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"

    out = []
    if title:
        out.append(title)
    out.append(line("="))
    out.append(fmt(list(headers)))
    out.append(line("="))
    for row in cells:
        out.append(fmt(row))
    out.append(line("-"))
    return "\n".join(out)


def percent(value: float, digits: int = 1) -> str:
    return f"{value * 100:.{digits}f}%"


def counter_rows(
    counters: dict, *, skip_zero: bool = True
) -> list[tuple[str, object]]:
    """Counter mapping → ``(name, value)`` table rows.

    Used with :func:`render_table` to print accounting summaries (e.g.
    the fault-tolerance counters of a chaos benchmark leg); zero-valued
    counters are skipped by default so the table shows only what
    actually happened, and float values are rounded for display."""
    rows = []
    for name, value in counters.items():
        if skip_zero and not value:
            continue
        if isinstance(value, float):
            value = round(value, 3)
        rows.append((name, value))
    return rows
