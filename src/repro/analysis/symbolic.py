"""Symbolic content tracking over the whole address space.

The content a march test leaves in a word is always an expression over
that word's unknown initial value ``c``: transparent operations keep it
in the form ``c ^ mask``, absolute (solid) writes collapse it to a bare
``mask``.  Because every word of a fault-free memory experiences the
identical per-visit operation sequence, one symbolic track describes
the *entire* address space — the state model the width-generic
``symbolic`` engine evaluates faults against, and the machinery behind
the paper's Table 1 rendering.

Three layers:

* :class:`SymbolicContent` — ``(c if relative else 0) ^ mask``, with
  width-generic bit evaluation (:meth:`SymbolicContent.bit_at`);
* :func:`symbolic_trace` — the per-op evolution of that content
  through a test, modelling both the oracle and the operational
  derived-write datapaths, for transparent *and* solid tests;
* :func:`symbolic_rows` / :func:`table1_rows` — the historical Table 1
  view (one transparent word), now a thin slice of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.march import MarchTest
from ..core.ops import Mask, Op


@dataclass(frozen=True)
class SymbolicContent:
    """The symbolic value of one word: ``(c if relative else 0) ^ mask``.

    ``relative`` says whether the unknown initial content ``c`` still
    participates; after an absolute write it does not, and the word
    holds a content-independent background.
    """

    relative: bool
    mask: Mask

    def bit_at(self, position: int, c_bit: int = 0) -> int:
        """Bit *position* of the content for a word whose initial bit
        at that position is *c_bit* — width-independent, like
        :meth:`~repro.core.ops.Mask.bit_at`."""
        base = c_bit if self.relative else 0
        return base ^ self.mask.bit_at(position)

    def resolve(self, width: int, initial: int = 0) -> int:
        """Concrete value at *width* for a word initially *initial*."""
        base = initial if self.relative else 0
        return (base ^ self.mask.resolve(width)) & ((1 << width) - 1)

    @property
    def symbol(self) -> str:
        if not self.relative:
            return self.mask.symbol
        if self.mask.is_zero:
            return "c"
        return f"c^{self.mask.symbol}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.symbol


@dataclass(frozen=True)
class TraceStep:
    """One operation of a symbolic trace.

    For reads, ``content_before`` is the raw value a fault-free memory
    returns and ``(c ^ mask if relative else mask)`` the expected
    value; for writes, ``content_after`` is what the datapath stores.
    """

    element_index: int
    op_index: int
    op: Op
    content_before: SymbolicContent
    content_after: SymbolicContent

    @property
    def is_read(self) -> bool:
        return self.op.is_read

    @property
    def relative(self) -> bool:
        return self.op.is_relative

    @property
    def mask(self) -> Mask:
        return self.op.data.mask

    def read_mismatch_bit(self, position: int, c_bit: int) -> bool:
        """Whether the fault-free read disagrees with its expected
        value at *position*, for a word whose initial bit there is
        *c_bit* (always False for well-formed tests).
        """
        raw = self.content_before.bit_at(position, c_bit)
        expected_base = c_bit if self.relative else 0
        return raw != expected_base ^ self.mask.bit_at(position)


@dataclass(frozen=True)
class SymbolicTrace:
    """The full-address-space symbolic execution of one march test.

    Every word of a fault-free memory follows ``steps`` in sequence
    (per element-visit); within one element, words already visited hold
    the element's final content while the rest still hold its entering
    content — which is all an engine needs, since march semantics never
    let one fault-free word observe another.
    """

    name: str
    steps: tuple[TraceStep, ...]
    derive_writes: bool
    start: SymbolicContent

    @property
    def read_steps(self) -> tuple[TraceStep, ...]:
        return tuple(step for step in self.steps if step.is_read)

    def content_entering(self, element_index: int) -> SymbolicContent:
        """Word content on entry to element *element_index*."""
        for step in self.steps:
            if step.element_index == element_index:
                return step.content_before
        raise IndexError(f"no element {element_index} in trace {self.name!r}")

    def content_leaving(self, element_index: int) -> SymbolicContent:
        """Word content after a full visit of element *element_index*."""
        content = None
        for step in self.steps:
            if step.element_index == element_index:
                content = step.content_after
        if content is None:
            raise IndexError(f"no element {element_index} in trace {self.name!r}")
        return content

    @property
    def final(self) -> SymbolicContent:
        return self.steps[-1].content_after if self.steps else self.start


def symbolic_trace(
    test: MarchTest,
    *,
    derive_writes: bool = False,
    start_mask: Mask = Mask.ZERO,
) -> SymbolicTrace:
    """Trace the symbolic content of a word through *test*.

    ``derive_writes`` selects the datapath for content-relative writes:
    ``False`` is the oracle view (the write stores ``c ^ mask``
    against the run snapshot — the classic Table 1 semantics), ``True``
    the operational BIST datapath (the write derives its data from the
    most recent read of the same element-visit, and raises
    :class:`ValueError` when no read precedes).  ``start_mask`` offsets
    the content entering the first element relative to ``c``.
    """
    state = SymbolicContent(True, start_mask)
    steps: list[TraceStep] = []
    op_index = 0
    for element_index, element in enumerate(test.elements):
        last_read: SymbolicContent | None = None
        last_mask = Mask.ZERO
        for op in element.ops:
            before = state
            if op.is_read:
                last_read, last_mask = state, op.data.mask
            elif op.is_relative and derive_writes:
                if last_read is None:
                    raise ValueError(
                        f"{test.name}: derived write {op} at element "
                        f"{element_index} has no preceding read in its "
                        "element-visit"
                    )
                state = SymbolicContent(
                    last_read.relative,
                    last_read.mask ^ last_mask ^ op.data.mask,
                )
            elif op.is_relative:
                state = SymbolicContent(True, op.data.mask)
            else:
                state = SymbolicContent(False, op.data.mask)
            steps.append(TraceStep(element_index, op_index, op, before, state))
            op_index += 1
    return SymbolicTrace(
        test.name, tuple(steps), derive_writes, SymbolicContent(True, start_mask)
    )


# ---------------------------------------------------------------------------
# Table 1: the historical single-word transparent view
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymbolicRow:
    """One operation of a transparent test with the content after it."""

    element_index: int
    op: Op
    content_mask: Mask

    def content_bits(self, width: int, symbol: str = "a") -> list[str]:
        """Bit-wise rendering, MSB first: ``a7`` or ``~a7`` etc."""
        mask = self.content_mask.resolve(width)
        bits = []
        for j in range(width - 1, -1, -1):
            inverted = (mask >> j) & 1
            bits.append(f"~{symbol}{j}" if inverted else f"{symbol}{j}")
        return bits

    def content_string(self, width: int, symbol: str = "a") -> str:
        return " ".join(self.content_bits(width, symbol))


def symbolic_rows(
    test: MarchTest,
    *,
    elements: slice | None = None,
    start_mask: Mask = Mask.ZERO,
) -> list[SymbolicRow]:
    """Symbolic content after each op of a transparent test (one word).

    ``elements`` restricts the view (e.g. ``slice(0, 3)`` for the first
    three march elements as in Table 1); ``start_mask`` is the content
    entering the first selected element, relative to ``c``.
    """
    if not test.is_transparent_form:
        raise ValueError("symbolic tracking is defined for transparent tests")
    selected = test.elements[elements] if elements is not None else test.elements
    if not selected:
        return []
    offset = 0
    if elements is not None:
        offset = elements.indices(len(test.elements))[0]
    view = MarchTest(test.name, tuple(selected))
    trace = symbolic_trace(view, derive_writes=False, start_mask=start_mask)
    return [
        SymbolicRow(offset + step.element_index, step.op, step.content_after.mask)
        for step in trace.steps
    ]


def table1_rows(atmarch: MarchTest, width: int = 8) -> list[tuple[str, str]]:
    """The paper's Table 1: (operation, word content) for the first
    three ATMarch elements of a *width*-bit word."""
    rows = symbolic_rows(atmarch, elements=slice(0, 3))
    return [(str(row.op), row.content_string(width)) for row in rows]
