"""Symbolic word-content tracking — regenerates the paper's Table 1.

Table 1 lists the content of one word (bits ``a7 .. a0`` for an 8-bit
memory) after each operation of the first three ATMarch elements.  The
content of a transparent test is always ``c ^ mask`` for some pattern
mask, so a bit is either ``a_j`` or its complement; this module renders
that evolution without committing to concrete data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.march import MarchTest
from ..core.ops import Mask, Op


@dataclass(frozen=True)
class SymbolicRow:
    """One operation of a transparent test with the content after it."""

    element_index: int
    op: Op
    content_mask: Mask

    def content_bits(self, width: int, symbol: str = "a") -> list[str]:
        """Bit-wise rendering, MSB first: ``a7`` or ``~a7`` etc."""
        mask = self.content_mask.resolve(width)
        bits = []
        for j in range(width - 1, -1, -1):
            inverted = (mask >> j) & 1
            bits.append(f"~{symbol}{j}" if inverted else f"{symbol}{j}")
        return bits

    def content_string(self, width: int, symbol: str = "a") -> str:
        return " ".join(self.content_bits(width, symbol))


def symbolic_rows(
    test: MarchTest,
    *,
    elements: slice | None = None,
    start_mask: Mask = Mask.ZERO,
) -> list[SymbolicRow]:
    """Symbolic content after each op of a transparent test (one word).

    ``elements`` restricts the view (e.g. ``slice(0, 3)`` for the first
    three march elements as in Table 1); ``start_mask`` is the content
    entering the first selected element, relative to ``c``.
    """
    if not test.is_transparent_form:
        raise ValueError("symbolic tracking is defined for transparent tests")
    selected = test.elements[elements] if elements is not None else test.elements
    offset = 0
    if elements is not None:
        offset = elements.indices(len(test.elements))[0]
    rows: list[SymbolicRow] = []
    current = start_mask
    for index, element in enumerate(selected):
        for op in element.ops:
            if op.is_write:
                current = op.data.mask
            rows.append(SymbolicRow(offset + index, op, current))
    return rows


def table1_rows(atmarch: MarchTest, width: int = 8) -> list[tuple[str, str]]:
    """The paper's Table 1: (operation, word content) for the first
    three ATMarch elements of a *width*-bit word."""
    rows = symbolic_rows(atmarch, elements=slice(0, 3))
    return [(str(row.op), row.content_string(width)) for row in rows]
