"""Soak-report analysis: detection-latency distributions, escape and
starvation accounting, matrix-level rendering.

The detection-latency contract: for every fault episode a scenario
reports either the exact cycle distance from arrival to the first
signature-detecting session attributed to it, or an explicit miss
(``missed_transient_windows`` for windows that closed untested,
``missed`` overall).  Aliasing escapes — sessions whose streaming
checker saw mismatches the MISR pair compacted away — are counted per
scenario, and diagnosis accuracy reports how often the offline
diagnosis pass localized the episode a detection was attributed to.
Everything here is arithmetic over those per-scenario counters;
nothing re-runs simulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .reports import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..soak.campaign import SoakCampaignReport
    from ..soak.scheduler import SoakReport


def latency_stats(latencies: Sequence[int]) -> dict:
    """Deterministic order statistics of a latency sample.

    Percentiles use the nearest-rank method (no interpolation), so the
    numbers are exact integers reproducible across platforms.
    """
    if not latencies:
        return {"count": 0}
    ordered = sorted(latencies)
    n = len(ordered)

    def rank(p: float) -> int:
        index = max(0, min(n - 1, (p * n + 99) // 100 - 1))
        return ordered[int(index)]

    return {
        "count": n,
        "min": ordered[0],
        "p50": rank(50),
        "p90": rank(90),
        "max": ordered[-1],
        "mean": sum(ordered) / n,
    }


def _latency_cell(report: "SoakReport") -> str:
    stats = latency_stats(report.detection_latencies)
    if not stats["count"]:
        return "-"
    return f"{stats['p50']}/{stats['p90']}"


def scenario_row(report: "SoakReport") -> tuple:
    accuracy = report.diagnosis_accuracy
    return (
        report.scenario,
        report.arrivals,
        report.detections,
        report.missed,
        report.missed_transient_windows,
        _latency_cell(report),
        report.aliasing_escapes,
        report.starved_periods,
        f"{accuracy:.0%}" if accuracy is not None else "-",
        report.final_step,
    )


def render_soak_report(report: "SoakReport") -> str:
    """One scenario, line oriented (the CI smoke leg greps these)."""
    stats = latency_stats(report.detection_latencies)
    lines = [
        f"scenario {report.scenario}: {report.cycles} cycles, "
        f"{report.idle_cycles} idle, {report.busy_writes} writes",
        f"  sessions: {report.sessions_completed} completed, "
        f"{report.sessions_aborted} aborted "
        f"({report.aborted_in_prediction} in prediction, "
        f"{report.aborted_in_test} in test), "
        f"{report.sessions_detecting} detecting",
        f"  episodes: {report.arrivals} arrived, "
        f"{report.detections} detected, {report.missed} missed "
        f"({report.missed_transient_windows} transient windows)",
    ]
    if stats["count"]:
        lines.append(
            f"  latency: min={stats['min']} p50={stats['p50']} "
            f"p90={stats['p90']} max={stats['max']}"
        )
    else:
        lines.append("  latency: no detections")
    accuracy = report.diagnosis_accuracy
    lines.append(
        f"  escapes: {report.aliasing_escapes} aliased, "
        f"{report.spurious_detections} spurious; "
        f"diagnosis accuracy: "
        + (f"{accuracy:.0%}" if accuracy is not None else "n/a")
    )
    lines.append(
        f"  schedule: {report.periods} periods, "
        f"{report.starved_periods} starved, "
        f"{report.degradations} degradations, "
        f"{report.recoveries} recoveries, final step {report.final_step}"
    )
    return "\n".join(lines)


def render_soak_campaign(campaign: "SoakCampaignReport") -> str:
    """The matrix table plus aggregate accounting lines."""
    table = render_table(
        [
            "Scenario", "Arrived", "Detected", "Missed", "MissedTW",
            "Latency p50/p90", "Escapes", "Starved", "DiagAcc", "Final step",
        ],
        [scenario_row(report) for report in campaign.reports],
        title="Soak scenario matrix",
    )
    all_latencies = [
        latency
        for report in campaign.reports
        for latency in report.detection_latencies
    ]
    stats = latency_stats(all_latencies)
    lines = [table]
    if stats["count"]:
        lines.append(
            f"aggregate latency ({stats['count']} detections): "
            f"min={stats['min']} p50={stats['p50']} p90={stats['p90']} "
            f"max={stats['max']} mean={stats['mean']:.1f}"
        )
    else:
        lines.append("aggregate latency: no detections")
    arrived = sum(r.arrivals for r in campaign.reports)
    detected = sum(r.detections for r in campaign.reports)
    escapes = sum(r.aliasing_escapes for r in campaign.reports)
    starved = sum(r.starved_periods for r in campaign.reports)
    lines.append(
        f"aggregate episodes: {arrived} arrived, {detected} detected, "
        f"{arrived - detected} missed; {escapes} aliasing escapes, "
        f"{starved} starved periods"
    )
    if campaign.resumed_scenarios:
        lines.append(
            f"resumed {campaign.resumed_scenarios} scenario(s) from "
            "checkpoint"
        )
    if not campaign.completed:
        lines.append(
            "partial run (max-batches reached); re-invoke with the same "
            "checkpoint to continue"
        )
    if campaign.fault_tolerance is not None and campaign.fault_tolerance.any:
        lines.append(f"faults: {campaign.fault_tolerance.render()}")
    return "\n".join(lines)
