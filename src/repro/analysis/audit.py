"""Catalog claim audit: static predictor vs. real engine campaigns.

Every :class:`~repro.library.catalog.CatalogEntry` carries a
``detects`` set — the classic bit-oriented coverage claims from the
literature.  :func:`audit_entry` checks those claims from two
independent directions:

* the static coverage predictor
  (:func:`repro.staticcheck.predict_coverage` at width 1, the
  bit-oriented setting the metadata speaks) must *imply* every claimed
  kind, and
* an actual engine campaign over the standard fault universe must
  confirm 100 % coverage for every class the predictor guarantees.

The contract is deliberately one-sided: the predictor may claim more
than the catalog records (classic papers under-report, e.g. AF or RDF
coverage), and the engine may show lucky 100 %s on classes the
predictor refuses to guarantee (content-dependent escapes need the
right initial content to manifest).  What must never happen is a
catalog claim the predictor cannot prove, or a predictor guarantee the
engine falsifies — either is a real bug in metadata, predictor, or
engine, and the audit test gates on both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..memory.injection import standard_fault_universe
from ..staticcheck.predictor import CLAIM_CLASSES, predict_coverage
from .coverage import compare_flow, run_campaign

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..library.catalog import CatalogEntry


@dataclass(frozen=True)
class AuditResult:
    """Audit verdict for one catalog entry.

    ``claimed`` is the catalog's ``detects`` metadata, ``predicted``
    the claim kinds the static predictor guarantees, and
    ``engine_percent`` the measured per-class campaign coverage.
    Empty ``problems`` means the entry passed.
    """

    entry_name: str
    n_words: int
    width: int
    claimed: frozenset[str]
    predicted: frozenset[str]
    engine_percent: dict[str, float]
    problems: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.problems

    def __bool__(self) -> bool:
        return self.ok

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        line = (
            f"{self.entry_name}: {status} — claims {_fmt(self.claimed)}, "
            f"predictor guarantees {_fmt(self.predicted)}"
        )
        if self.problems:
            line += "".join(f"\n  {problem}" for problem in self.problems)
        return line


def _fmt(kinds: Iterable[str]) -> str:
    return "{" + ", ".join(sorted(kinds)) + "}"


def audit_entry(
    entry: "CatalogEntry",
    *,
    n_words: int = 5,
    width: int = 1,
    seed: int = 0,
    engine: str = "batch",
) -> AuditResult:
    """Audit one entry's ``detects`` claims (see the module docstring).

    ``width=1`` matches the bit-oriented language of the metadata;
    raise it to audit word-level claims instead.  The campaign runs the
    full universe (RDF/DRDF and AF included) through the alias-free
    compare flow so aliasing never masks a predictor error.
    """
    prediction = predict_coverage(entry.test, width=width)
    predicted = prediction.claim_kinds
    problems: list[str] = []

    for kind in sorted(entry.detects):
        if kind not in CLAIM_CLASSES:
            problems.append(f"unknown fault kind in catalog metadata: {kind}")
        elif kind not in predicted:
            detail = "; ".join(
                f"{name}: {prediction.classes[name].reason}"
                for name in CLAIM_CLASSES[kind]
                if not (
                    prediction.classes[name].guaranteed
                    or prediction.classes[name].vacuous
                )
            )
            problems.append(
                f"catalog claims {kind} but the predictor cannot guarantee "
                f"it ({detail})"
            )

    flow = compare_flow(entry.test, n_words, width, seed=seed)
    universe = standard_fault_universe(
        n_words,
        width,
        include_rdf=True,
        include_af=True,
        rng=random.Random(seed),
    )
    report = run_campaign(flow, universe, engine=engine)
    engine_percent = {
        name: coverage.percent for name, coverage in report.classes.items()
    }
    for name in sorted(prediction.claims):
        percent = engine_percent.get(name)
        if percent is not None and percent != 100.0:
            problems.append(
                f"predictor guarantees {name} but the engine campaign "
                f"measured {percent:.1f}% ({n_words} words x {width} bits)"
            )

    return AuditResult(
        entry.name,
        n_words,
        width,
        frozenset(entry.detects),
        predicted,
        engine_percent,
        tuple(problems),
    )


def audit_catalog(
    names: Iterable[str] | None = None,
    *,
    n_words: int = 5,
    width: int = 1,
    seed: int = 0,
    engine: str = "batch",
) -> list[AuditResult]:
    """Audit catalog entries (all of them by default)."""
    from ..library import catalog

    wanted = catalog.names() if names is None else list(names)
    return [
        audit_entry(
            catalog.entry(name),
            n_words=n_words,
            width=width,
            seed=seed,
            engine=engine,
        )
        for name in wanted
    ]
