"""Prior-work baselines: Scheme 1 (Nicolaidis [12]) and TOMT [13]."""

from .scheme1 import (
    Scheme1Result,
    scheme1_formula_tcm,
    scheme1_formula_tcp,
    scheme1_transform,
)
from .tomt import (
    TOMT_EXTRA_OPS,
    TOMT_OPS_PER_BIT,
    TomtBaseline,
    TomtOutcome,
    plain_memory_tomt,
    tomt_tcm,
    tomt_test,
)

__all__ = [
    "Scheme1Result",
    "TOMT_EXTRA_OPS",
    "TOMT_OPS_PER_BIT",
    "TomtBaseline",
    "TomtOutcome",
    "plain_memory_tomt",
    "scheme1_formula_tcm",
    "scheme1_formula_tcp",
    "scheme1_transform",
    "tomt_tcm",
    "tomt_test",
]
