"""Scheme 2 baseline: TOMT-style transparent online testing [13].

TOMT (Thaller & Steininger, IEEE Trans. Reliability 2003) targets
word-oriented memories protected by parity or Hamming codes.  It walks
a test stimulus bit-by-bit across every word and relies on the code
checker — not a signature — for detection, so it needs no
signature-prediction pass (``TCP = 0``) but performs bit-wise
manipulation inside each word, making its length linear in the word
width ``b``.

Reconstruction (DESIGN.md §4.5): per bit position a double
read–flip–read–restore round (9 operations, exercising both transitions
of the bit twice against the resident data), plus a leading and a
trailing code-check sweep:

    TCM_TOMT = (9 b + 2) * n

calibrated so the paper's quantitative comparison holds (March C−,
b = 32: the proposed scheme is about 19 % of TOMT's length).  The
baseline executes against a :class:`~repro.ecc.codec.CodedMemory`, so
detection flows through a real Hamming/parity decode of every read.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.element import AddressOrder, MarchElement
from ..core.march import MarchTest
from ..core.ops import DataExpr, Mask, Op, bit
from ..ecc.codec import CodedMemory
from ..ecc.hamming import HammingSECDED
from ..memory.injection import FaultyMemory
from ..memory.model import Memory
from ..bist.executor import run_march

TOMT_OPS_PER_BIT = 9
TOMT_EXTRA_OPS = 2


def tomt_test(width: int, name: str | None = None) -> MarchTest:
    """The TOMT-style transparent word test for *width*-bit data words."""
    if width < 1:
        raise ValueError("width must be >= 1")
    elements: list[MarchElement] = [
        MarchElement(AddressOrder.ANY, (Op.read(DataExpr(True, Mask.ZERO)),))
    ]
    for j in range(width):
        ej = Mask.of(bit(j))
        elements.append(
            MarchElement(
                AddressOrder.ANY,
                (
                    Op.read(DataExpr(True, Mask.ZERO)),
                    Op.write(DataExpr(True, ej)),
                    Op.read(DataExpr(True, ej)),
                    Op.write(DataExpr(True, Mask.ZERO)),
                    Op.read(DataExpr(True, Mask.ZERO)),
                    Op.write(DataExpr(True, ej)),
                    Op.read(DataExpr(True, ej)),
                    Op.write(DataExpr(True, Mask.ZERO)),
                    Op.read(DataExpr(True, Mask.ZERO)),
                ),
            )
        )
    elements.append(
        MarchElement(AddressOrder.ANY, (Op.read(DataExpr(True, Mask.ZERO)),))
    )
    return MarchTest(
        name if name is not None else f"TOMT (b={width})",
        tuple(elements),
        notes="bit-walking transparent online test, Thaller/Steininger [13]",
    )


def tomt_tcm(width: int) -> int:
    """Closed-form TCM/n of the TOMT baseline: ``9b + 2``."""
    return TOMT_OPS_PER_BIT * width + TOMT_EXTRA_OPS


@dataclass(frozen=True)
class TomtOutcome:
    """Result of one TOMT session."""

    code_errors: int
    stream_mismatches: int
    ops_executed: int

    @property
    def detected(self) -> bool:
        """TOMT's native detection channel is the code checker; the
        read-stream compare is included for completeness (a comparator
        on expected data, which TOMT hardware also has)."""
        return self.code_errors > 0 or self.stream_mismatches > 0

    @property
    def code_detected(self) -> bool:
        return self.code_errors > 0


class TomtBaseline:
    """TOMT runner over an ECC-protected memory."""

    def __init__(self, data_bits: int, codec=None) -> None:
        self.codec = codec if codec is not None else HammingSECDED(data_bits)
        if self.codec.data_bits != data_bits:
            raise ValueError("codec data width mismatch")
        self.data_bits = data_bits
        self.test = tomt_test(data_bits)

    def make_memory(
        self, n_words: int, faults=(), fill: int = 0
    ) -> CodedMemory:
        """An ECC-protected memory whose *physical* array (codewords,
        check bits included) can carry injected faults."""
        backing = FaultyMemory(n_words, self.codec.code_bits, faults, fill)
        coded = CodedMemory(backing, self.codec)
        coded.load_data([fill] * n_words)
        return coded

    def run(self, memory: CodedMemory) -> TomtOutcome:
        """One full TOMT pass over *memory*."""
        memory.reset_counters()
        result = run_march(self.test, memory)
        return TomtOutcome(
            code_errors=memory.errors_detected,
            stream_mismatches=result.n_mismatches,
            ops_executed=result.ops_executed,
        )


def plain_memory_tomt(memory: Memory) -> TomtOutcome:
    """Run the TOMT op sequence on an unprotected memory (no code
    channel); detection falls back to the stream compare.  Useful for
    complexity accounting and ablations."""
    result = run_march(tomt_test(memory.width), memory)
    return TomtOutcome(
        code_errors=0,
        stream_mismatches=result.n_mismatches,
        ops_executed=result.ops_executed,
    )
