"""Scheme 1 baseline: Nicolaidis's word-oriented transparent testing [12].

The classic approach converts a bit-oriented March test into a
word-oriented one by repeating it once per data background
(``log2 b + 1`` backgrounds: all-0 plus the checkerboards), then makes
each pass transparent by executing the transformation rules on every
bit of a word.  The paper's Section 3 walks through this for March C−
on 4-bit words (tests T1'–T4').

Reconstruction notes (the scanned paper garbles the op-level detail of
T2'/T3'; see DESIGN.md §4.4):

* pass 1 (background all-0) is the plain transparent test — data
  alternates between ``c`` and ``~c``;
* every later pass for background ``D`` first switches the content from
  ``c`` to ``c ^ D`` (a 2-op read/write element), then runs the body
  with data alternating between ``c ^ D`` and ``c ^ ~D`` — this is what
  makes the passes genuinely different and gives the scheme its
  intra-word coverage;
* a final restore element brings the content back to ``c``.

The *executable* construction above costs a couple of ops more per pass
than the paper's closed-form count ``TCM1 = N(log2 b + 1)`` (which
matches the op totals printed in the paper's example).  Both the
measured and the closed-form numbers are reported by the complexity
tables; the headline ratios hold for either.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.backgrounds import log2_width
from ..core.element import AddressOrder, MarchElement
from ..core.march import MarchTest
from ..core.ops import DataExpr, Mask, Op, checker
from ..core.signature import prediction_test
from ..core.twm import TWMError


@dataclass(frozen=True)
class Scheme1Result:
    """Artifacts of the Scheme 1 word-oriented transparent conversion."""

    bmarch: MarchTest
    width: int
    passes: tuple[MarchTest, ...]
    transparent: MarchTest
    prediction: MarchTest

    @property
    def tcm(self) -> int:
        """Measured ops per word of the executable construction."""
        return self.transparent.op_count

    @property
    def tcp(self) -> int:
        return self.prediction.op_count

    @property
    def n_backgrounds(self) -> int:
        """Background passes (the final restore pass not included)."""
        return sum(1 for p in self.passes if not p.name.startswith("T-restore"))

    def summary(self) -> str:
        return (
            f"Scheme1({self.bmarch.name}, b={self.width}): "
            f"{self.n_backgrounds} background passes, "
            f"TCM {self.tcm}n, TCP {self.tcp}n"
        )


def _require_bit_oriented(bmarch: MarchTest) -> None:
    if not bmarch.is_solid_form:
        raise TWMError(f"{bmarch.name} must be non-transparent (solid form)")
    for op in bmarch.all_ops:
        if op.data.mask not in (Mask.ZERO, Mask.ONES):
            raise TWMError(f"{bmarch.name} is not bit-oriented")


def _pass_body(
    bmarch: MarchTest, zero_mask: Mask, one_mask: Mask
) -> tuple[list[MarchElement], Mask]:
    """The transparent body of one background pass.

    Maps bit value 0 to ``c ^ zero_mask`` and 1 to ``c ^ one_mask``,
    dropping the pure-write init element and prepending reads to
    elements that start with a write.  Returns the elements and the
    final content mask.
    """
    elements = list(bmarch.elements)
    if not elements[0].is_pure_write:
        raise TWMError(
            f"{bmarch.name} must start with a pure-write initialization element"
        )
    init_value = elements[0].ops[-1].data.mask  # ZERO or ONES
    current = zero_mask if init_value == Mask.ZERO else one_mask

    def to_mask(op: Op) -> Mask:
        return zero_mask if op.data.mask == Mask.ZERO else one_mask

    body: list[MarchElement] = []
    for element in elements[1:]:
        ops: list[Op] = []
        if element.starts_with_write:
            ops.append(Op.read(DataExpr(True, current)))
        for op in element.ops:
            mask = to_mask(op)
            if op.is_read:
                ops.append(Op.read(DataExpr(True, mask)))
            else:
                ops.append(Op.write(DataExpr(True, mask)))
                current = mask
        body.append(MarchElement(element.order, tuple(ops)))
    return body, current


def scheme1_transform(bmarch: MarchTest, width: int) -> Scheme1Result:
    """Convert *bmarch* into a Scheme 1 transparent word test for
    *width*-bit words."""
    _require_bit_oriented(bmarch)
    levels = log2_width(width)
    backgrounds = [Mask.ZERO] + [Mask.of(checker(k)) for k in range(1, levels + 1)]

    if not bmarch.elements[0].is_pure_write:
        raise TWMError(
            f"{bmarch.name} must start with a pure-write initialization element"
        )
    init_value = bmarch.elements[0].ops[-1].data.mask  # ZERO or ONES

    passes: list[MarchTest] = []
    all_elements: list[MarchElement] = []
    current = Mask.ZERO  # content relative to c entering the next pass
    for index, bg in enumerate(backgrounds):
        elements: list[MarchElement] = []
        # The pass body expects the image of the init value at entry.
        entry = bg if init_value == Mask.ZERO else bg ^ Mask.ONES
        if entry != current:
            # Background switch: move content from c^current to c^entry.
            elements.append(
                MarchElement(
                    AddressOrder.ANY,
                    (
                        Op.read(DataExpr(True, current)),
                        Op.write(DataExpr(True, entry)),
                    ),
                )
            )
            current = entry
        body, current = _pass_body(bmarch, bg, bg ^ Mask.ONES)
        elements.extend(body)
        pass_test = MarchTest(
            f"T{index + 1}' ({bmarch.name}, bg={bg.symbol})", tuple(elements)
        )
        passes.append(pass_test)
        all_elements.extend(elements)

    if current != Mask.ZERO:
        # T4': restore the original content.
        restore = MarchElement(
            AddressOrder.ANY,
            (
                Op.read(DataExpr(True, current)),
                Op.write(DataExpr(True, Mask.ZERO)),
            ),
        )
        passes.append(MarchTest("T-restore'", (restore,)))
        all_elements.append(restore)

    transparent = MarchTest(
        f"Scheme1 {bmarch.name} (b={width})",
        tuple(all_elements),
        notes="per-background transparent word test, Nicolaidis [12]",
    )
    return Scheme1Result(
        bmarch=bmarch,
        width=width,
        passes=tuple(passes),
        transparent=transparent,
        prediction=prediction_test(transparent, f"Scheme1 {bmarch.name} SP"),
    )


def scheme1_formula_tcm(n_ops: int, width: int) -> int:
    """Closed-form TCM/n of Scheme 1 as printed in the paper's example:
    ``N * (log2 b + 1)``."""
    return n_ops * (log2_width(width) + 1)


def scheme1_formula_tcp(n_reads: int, width: int) -> int:
    """Closed-form TCP/n of Scheme 1 (reconstructed, see DESIGN.md):
    ``Q + (Q + 1) * log2 b``."""
    levels = log2_width(width)
    return n_reads + (n_reads + 1) * levels
